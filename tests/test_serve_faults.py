"""Tests of fault injection, retry, and graceful degradation.

Covers the robustness contract of :mod:`repro.serve.faults`:

* a zero-rate :class:`FaultInjector` is a provable no-op: the report --
  event trace included -- is byte-identical to a run with no injector
  (hypothesis-driven across seeds, rates, and fleet sizes);
* the same seed reproduces the same fault schedule, and each worker's
  schedule is independent of the fleet size;
* the extended conservation invariant ``arrivals == completed + shed +
  failed + queued + in_flight`` holds across crash-heavy regimes, with and
  without shedding, drained and cut off (``finalize`` raises otherwise);
* a crash mid-batch loses the batch, retries its requests in FIFO order
  on the survivors, and terminally fails them once attempts are exhausted;
* thermal throttling prices dispatches at the derate; downtime intervals
  clamp to the horizon; drains are permanent against stale repairs;
* :class:`TraceEvent` entries stay backward-readable as plain tuples.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.accelerator import CrossLightAccelerator
from repro.experiments import serving_faults
from repro.nn.zoo import build_model
from repro.serve import (
    BatchPolicy,
    EventQueue,
    FaultInjector,
    FaultModel,
    PoissonTraffic,
    RetryPolicy,
    TraceEvent,
    TraceTraffic,
    requests_from_traffic,
    serve_trace,
)
from repro.serve.workers import AcceleratorWorker
from repro.sim.tracer import trace_model
from repro.study import run_experiment


@pytest.fixture(scope="module")
def lenet():
    return build_model(1)


@pytest.fixture(scope="module")
def crosslight():
    return CrossLightAccelerator.from_variant("cross_opt_ted")


@pytest.fixture(scope="module")
def lenet_workloads(lenet):
    return trace_model(lenet)


@pytest.fixture(scope="module")
def batch8_latency_s(crosslight, lenet_workloads):
    return crosslight.batch_latency_s(lenet_workloads, 8)


def _drain_demo_traffic(n: int = 8, duration_s: float | None = None):
    """``n`` simultaneous arrivals at t=0 (one full batch)."""
    return TraceTraffic([0.0] * n, duration_s=duration_s)


# --------------------------------------------------------------------------- #
# Zero-fault no-op property
# --------------------------------------------------------------------------- #
class TestZeroFaultNoOp:
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        rate_rps=st.sampled_from([40_000.0, 120_000.0]),
        n_workers=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=10, deadline=None)
    def test_disabled_injector_is_byte_identical(
        self, lenet, crosslight, seed, rate_rps, n_workers
    ):
        traffic = PoissonTraffic(rate_rps=rate_rps, duration_s=0.004)
        policy = BatchPolicy(max_batch_size=8, max_wait_s=100e-6, max_queue_depth=64)
        plain = serve_trace(
            lenet, crosslight, traffic, policy, n_workers=n_workers, seed=seed
        )
        injected = serve_trace(
            lenet, crosslight, traffic, policy, n_workers=n_workers, seed=seed,
            faults=FaultModel(), retry=RetryPolicy(),
        )
        assert injected == plain
        assert injected.event_trace == plain.event_trace
        assert injected.faults == "none"
        assert injected.summary() == plain.summary()

    def test_disabled_model_describes_none_and_schedules_nothing(self):
        injector = FaultInjector(FaultModel(), seed=5)
        assert not injector.enabled
        assert injector.describe() == "none"
        queue = EventQueue()
        assert injector.schedule(queue, n_workers=4, duration_s=1.0) == 0
        assert len(queue) == 0


# --------------------------------------------------------------------------- #
# Injector determinism and stream independence
# --------------------------------------------------------------------------- #
class TestFaultInjector:
    MODEL = FaultModel(
        crash_mtbf_s=0.3, repair_mttr_s=0.05,
        throttle_mtbf_s=0.4, throttle_duration_s=0.1, throttle_derate=2.0,
    )

    @staticmethod
    def _schedule(seed: int, n_workers: int):
        queue = EventQueue()
        FaultInjector(TestFaultInjector.MODEL, seed=seed).schedule(
            queue, n_workers=n_workers, duration_s=1.0
        )
        return [(t, priority, payload) for t, priority, _, payload in queue.drain()]

    def test_same_seed_same_schedule(self):
        assert self._schedule(3, 2) == self._schedule(3, 2)

    def test_different_seed_different_schedule(self):
        assert self._schedule(3, 2) != self._schedule(4, 2)

    def test_worker_streams_independent_of_fleet_size(self):
        # Adding a worker must not perturb the existing workers' schedules.
        def per_worker(events):
            by_worker: dict[int, list] = {}
            for time_s, _, payload in events:
                by_worker.setdefault(payload.worker_id, []).append((time_s, payload))
            return by_worker

        small = per_worker(self._schedule(0, 2))
        large = per_worker(self._schedule(0, 3))
        assert small[0] == large[0]
        assert small[1] == large[1]

    def test_fault_run_is_seed_deterministic(self, lenet, crosslight):
        traffic = PoissonTraffic(rate_rps=100_000.0, duration_s=0.005)
        policy = BatchPolicy(max_batch_size=8, max_wait_s=100e-6)
        model = FaultModel(crash_mtbf_s=0.002, repair_mttr_s=0.0005)
        runs = [
            serve_trace(
                lenet, crosslight, traffic, policy, n_workers=2, seed=11, faults=model
            )
            for _ in range(2)
        ]
        assert runs[0] == runs[1]
        assert runs[0].event_trace == runs[1].event_trace
        assert runs[0].n_lost_batches >= 0

    def test_drain_names_worker_beyond_fleet(self):
        injector = FaultInjector(FaultModel(drain_at_s=((5, 0.1),)))
        with pytest.raises(ValueError, match="fleet has 2 workers"):
            injector.schedule(EventQueue(), n_workers=2, duration_s=1.0)


# --------------------------------------------------------------------------- #
# Conservation under crash-heavy regimes
# --------------------------------------------------------------------------- #
class TestConservation:
    @pytest.mark.parametrize("max_queue_depth", [None, 16], ids=["unbounded", "shedding"])
    @pytest.mark.parametrize("drain", [True, False], ids=["drained", "cutoff"])
    @pytest.mark.parametrize("max_attempts", [1, 2, 3])
    def test_crash_heavy_regimes_conserve(
        self, lenet, crosslight, max_queue_depth, drain, max_attempts
    ):
        report = serve_trace(
            lenet,
            crosslight,
            PoissonTraffic(rate_rps=150_000.0, duration_s=0.01),
            BatchPolicy(
                max_batch_size=8, max_wait_s=100e-6, max_queue_depth=max_queue_depth
            ),
            n_workers=2,
            seed=2,
            drain=drain,
            faults=FaultModel(crash_mtbf_s=0.002, repair_mttr_s=0.001),
            retry=RetryPolicy(max_attempts=max_attempts),
        )
        # finalize() already raises on violation; assert the arithmetic too.
        assert report.conserved
        assert report.n_arrivals == (
            report.n_completed + report.n_shed + report.n_failed
            + report.n_queued_end + report.n_in_flight_end
        )
        assert report.n_lost_batches > 0  # the regime really is crash-heavy
        if max_attempts == 1:
            assert report.n_failed > 0 and report.n_retries == 0

    def test_pending_backoff_retries_count_as_queued(
        self, lenet, crosslight, batch8_latency_s
    ):
        latency = batch8_latency_s
        report = serve_trace(
            lenet,
            crosslight,
            _drain_demo_traffic(8, duration_s=latency),
            BatchPolicy(max_batch_size=8, max_wait_s=latency),
            n_workers=1,
            seed=0,
            drain=False,
            faults=FaultModel(drain_at_s=((0, 0.5 * latency),)),
            retry=RetryPolicy(max_attempts=3, backoff_s=latency),
        )
        # The batch is lost at latency/2; retries land at 1.5*latency,
        # beyond the cut-off window, so they are queued work at the end.
        assert report.n_completed == 0
        assert report.n_lost_batches == 1
        assert report.n_queued_end == 8
        assert report.n_in_flight_end == 0
        assert report.conserved


# --------------------------------------------------------------------------- #
# Crash-mid-batch semantics
# --------------------------------------------------------------------------- #
class TestCrashMidBatch:
    def _demo(self, lenet, crosslight, latency, **kwargs):
        defaults = dict(
            n_workers=2,
            seed=0,
            faults=FaultModel(drain_at_s=((0, 0.5 * latency),)),
            retry=RetryPolicy(max_attempts=3),
        )
        defaults.update(kwargs)
        return serve_trace(
            lenet,
            crosslight,
            _drain_demo_traffic(8),
            BatchPolicy(max_batch_size=8, max_wait_s=latency),
            **defaults,
        )

    def test_lost_batch_retries_complete_on_survivor(
        self, lenet, crosslight, batch8_latency_s
    ):
        report = self._demo(lenet, crosslight, batch8_latency_s)
        assert report.n_lost_batches == 1
        assert report.n_retries == 8
        assert report.n_completed == 8
        assert report.n_failed == 0
        assert report.n_retried_completions == 8
        assert report.goodput_rps == 0.0  # every completion needed a retry
        assert {record.worker_id for record in report.requests} == {1}
        kinds = [event.kind for event in report.event_trace]
        assert kinds.count("batch_lost") == 1
        assert kinds.count("retry") == 8
        assert kinds.index("worker_down") < kinds.index("batch_lost")

    def test_retry_preserves_fifo_order(self, lenet, crosslight, batch8_latency_s):
        report = self._demo(lenet, crosslight, batch8_latency_s)
        # The re-formed batch on the survivor holds the original order.
        surviving = [batch for batch in report.batches if batch.worker_id == 1]
        assert len(surviving) == 1
        assert [r.request_id for r in surviving[0].requests] == list(range(8))

    def test_exhausted_attempts_terminally_fail(
        self, lenet, crosslight, batch8_latency_s
    ):
        report = self._demo(
            lenet, crosslight, batch8_latency_s, retry=RetryPolicy(max_attempts=1)
        )
        assert report.n_completed == 0
        assert report.n_retries == 0
        assert report.n_failed == 8
        assert report.failed_rate == 1.0
        assert report.conserved
        for failure in report.failures:
            assert failure.attempts == 1
            assert failure.failed_s == pytest.approx(0.5 * batch8_latency_s)
        assert [e.kind for e in report.event_trace].count("failed") == 8

    def test_lost_batch_wastes_partial_busy_time(
        self, lenet, crosslight, batch8_latency_s
    ):
        report = self._demo(lenet, crosslight, batch8_latency_s)
        elapsed = 0.5 * batch8_latency_s
        assert report.wasted_busy_s == pytest.approx(elapsed)
        assert report.wasted_energy_j == pytest.approx(
            elapsed * report.worker_power_w[0]
        )
        # Worker 0 accrued exactly the doomed half-batch of busy time.
        assert report.worker_busy_s[0] == pytest.approx(elapsed)

    def test_crash_summary_mentions_faults(self, lenet, crosslight, batch8_latency_s):
        report = self._demo(lenet, crosslight, batch8_latency_s)
        assert "drain(1 workers)" in report.faults
        assert "retries" in report.summary()


# --------------------------------------------------------------------------- #
# Throttling, downtime, and the worker state machine
# --------------------------------------------------------------------------- #
class TestDegradedWorkers:
    def test_throttle_derate_prices_dispatches(
        self, lenet, crosslight, lenet_workloads
    ):
        nominal = crosslight.batch_latency_s(lenet_workloads, 4)
        report = serve_trace(
            lenet,
            crosslight,
            TraceTraffic([1e-6] * 4),
            BatchPolicy(max_batch_size=4, max_wait_s=1e-3),
            n_workers=1,
            seed=0,
            # Onset ~exp(1ns) precedes the 1us arrivals; the episode
            # (~1s) outlives the run, so the only batch is throttled.
            faults=FaultModel(
                throttle_mtbf_s=1e-9, throttle_duration_s=1.0, throttle_derate=3.0
            ),
        )
        assert report.n_completed == 4
        assert len(report.batches) == 1
        assert report.batches[0].latency_s == pytest.approx(3.0 * nominal)
        kinds = [event.kind for event in report.event_trace]
        assert "throttle_start" in kinds

    def test_drained_worker_downtime_and_availability(
        self, lenet, crosslight, batch8_latency_s
    ):
        latency = batch8_latency_s
        report = serve_trace(
            lenet,
            crosslight,
            _drain_demo_traffic(8),
            BatchPolicy(max_batch_size=8, max_wait_s=latency),
            n_workers=2,
            seed=0,
            faults=FaultModel(drain_at_s=((0, 0.5 * latency),)),
            retry=RetryPolicy(max_attempts=3),
        )
        # Horizon = survivor's completion at 1.5*latency; worker 0 is down
        # from 0.5*latency to the horizon.
        assert report.horizon_s == pytest.approx(1.5 * latency)
        assert report.worker_downtime_s[0] == pytest.approx(latency)
        assert report.worker_downtime_s[1] == 0.0
        assert report.worker_availability[0] == pytest.approx(1 / 3)
        assert report.worker_availability[1] == 1.0
        assert report.availability == pytest.approx(2 / 3)

    def test_state_machine_transitions(self):
        worker = AcceleratorWorker(0, CrossLightAccelerator.from_variant("cross_opt_ted"))
        assert worker.state == "up" and worker.available
        assert worker.throttle(2.0, episode=0)
        assert worker.state == "throttled" and worker.derate == 2.0
        assert worker.available and worker.idle(0.0)
        worker.mark_down(1.0)
        assert worker.state == "down" and worker.derate == 1.0
        assert not worker.available and not worker.idle(5.0)
        with pytest.raises(RuntimeError, match="already down"):
            worker.mark_down(2.0)
        assert worker.mark_up(3.0)
        assert worker.state == "up"
        assert worker.downtime_s(10.0) == pytest.approx(2.0)

    def test_stale_throttle_end_is_noop(self):
        worker = AcceleratorWorker(0, CrossLightAccelerator.from_variant("cross_opt_ted"))
        assert worker.throttle(2.0, episode=0)
        worker.mark_down(1.0)  # crash clears the episode
        assert not worker.unthrottle(episode=0)
        assert worker.mark_up(2.0)
        assert worker.state == "up" and worker.derate == 1.0

    def test_drain_is_permanent_against_stale_repair(self):
        worker = AcceleratorWorker(0, CrossLightAccelerator.from_variant("cross_opt_ted"))
        worker.mark_down(1.0, drained=True)
        assert not worker.mark_up(2.0)
        assert worker.state == "down" and worker.drained
        assert worker.downtime_s(5.0) == pytest.approx(4.0)

    def test_downtime_clamps_to_horizon(self):
        worker = AcceleratorWorker(0, CrossLightAccelerator.from_variant("cross_opt_ted"))
        worker.mark_down(1.0)
        worker.mark_up(8.0)
        assert worker.downtime_s(4.0) == pytest.approx(3.0)
        assert worker.downtime_s(10.0) == pytest.approx(7.0)


# --------------------------------------------------------------------------- #
# Trace events, validation, and window-edge rejection
# --------------------------------------------------------------------------- #
class TestContracts:
    def test_trace_event_reads_as_plain_tuple(self):
        event = TraceEvent(1.5, "dispatch", 3, 0, 8, "lenet5")
        assert event == (1.5, "dispatch", 3, 0, 8, "lenet5")
        assert hash(event) == hash((1.5, "dispatch", 3, 0, 8, "lenet5"))
        assert tuple(event) == event
        assert event.time_s == 1.5
        assert event.kind == "dispatch"
        assert event.ids == (3, 0, 8, "lenet5")

    def test_trace_event_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown trace-event kind"):
            TraceEvent(0.0, "exploded", 1)

    def test_event_trace_entries_are_tuples(self, lenet, crosslight):
        report = serve_trace(
            lenet,
            crosslight,
            PoissonTraffic(rate_rps=50_000.0, duration_s=0.002),
            BatchPolicy(max_batch_size=8, max_wait_s=100e-6),
            seed=0,
        )
        assert all(isinstance(event, tuple) for event in report.event_trace)
        assert list(report.event_trace) == [tuple(e) for e in report.event_trace]

    def test_requests_from_traffic_rejects_window_edge(self):
        class EdgeTraffic(PoissonTraffic):
            def arrival_times(self, rng):
                return np.asarray([0.0, self.duration_s])

        with pytest.raises(ValueError, match="at or beyond its"):
            requests_from_traffic(
                EdgeTraffic(rate_rps=1.0, duration_s=0.5), "lenet5", seed=0
            )

    def test_retry_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_s=-1.0)
        assert "max_attempts=2" in RetryPolicy(max_attempts=2).describe()

    def test_fault_model_validation(self):
        with pytest.raises(ValueError):
            FaultModel(crash_mtbf_s=-1.0)
        with pytest.raises(ValueError, match="throttle_derate"):
            FaultModel(throttle_mtbf_s=1.0, throttle_derate=0.5)
        with pytest.raises(ValueError):
            FaultModel(drain_at_s=((-1, 0.5),))
        assert FaultModel(crash_mtbf_s=1.0).enabled
        assert "crash(mtbf=1s" in FaultModel(crash_mtbf_s=1.0).describe()

    def test_injector_rejects_bad_inputs(self):
        with pytest.raises(TypeError):
            FaultInjector("not a model")
        with pytest.raises(TypeError):
            FaultInjector(FaultModel(), seed=1.5)


# --------------------------------------------------------------------------- #
# The serving_faults experiment
# --------------------------------------------------------------------------- #
class TestServingFaultsStudy:
    @pytest.fixture(scope="class")
    def reduced(self):
        return run_experiment(
            "serving_faults",
            n_requests=200,
            mtbf_fractions=(0.25,),
            mttr_fractions=(0.1,),
            derates=(2.0,),
            headroom_extra=1,
        )

    def test_baseline_is_fault_free(self, reduced):
        baseline = reduced.result.baseline
        assert baseline.availability == 1.0
        assert baseline.n_retries == 0 and baseline.n_failed == 0
        assert baseline.goodput_rps == baseline.throughput_rps

    def test_crash_regime_degrades(self, reduced):
        point = reduced.result.crash_sweep[0]
        assert point.availability < 1.0
        assert point.goodput_rps <= point.throughput_rps
        assert point.n_lost_batches > 0

    def test_demo_shows_retry_and_failure_paths(self, reduced):
        retry_demo, fail_demo = reduced.result.demos
        assert retry_demo.n_retries == retry_demo.n_completed == 8
        assert retry_demo.n_failed == 0
        assert fail_demo.n_failed == 8 and fail_demo.n_completed == 0
        text = reduced.to_text()
        assert "Crash-mid-batch demo" in text
        assert "8 retries" in text and "8 failed" in text

    def test_main_shim_matches_registry(self):
        report = run_experiment("serving_faults", n_requests=150)
        assert serving_faults.main(["--requests", "150"]) == report.to_text()
