"""Tests for the DEAP-CNN, HolyLight, and electronic baseline models."""

from __future__ import annotations

import pytest

from repro.baselines import (
    DeapCnnAccelerator,
    ELECTRONIC_PLATFORMS,
    HolyLightAccelerator,
    PAPER_PHOTONIC_REFERENCE,
    electronic_platform,
)
from repro.devices import TO_TUNING


class TestDeapCnn:
    def test_resolution_is_4_bits(self):
        assert DeapCnnAccelerator().resolution_bits == 4

    def test_cycle_time_dominated_by_thermal_tuning(self):
        deap = DeapCnnAccelerator()
        assert deap.cycle_time_s() >= TO_TUNING.latency_s

    def test_fc_layers_share_conv_units(self):
        deap = DeapCnnAccelerator()
        assert deap.fc_vector_size == deap.conv_vector_size == 25
        assert deap.n_fc_units == deap.n_conv_units

    def test_power_components_positive(self):
        breakdown = DeapCnnAccelerator().power_breakdown()
        assert breakdown.total_w > 0
        assert breakdown.tuning_dynamic_w > 0  # thermal weight imprinting

    def test_imprint_power_much_higher_than_crosslight_eo(self):
        from repro.arch import CrossLightAccelerator

        deap = DeapCnnAccelerator()
        crosslight = CrossLightAccelerator.from_variant("cross_opt_ted")
        assert (
            deap._weight_imprint_power_per_mr_w()
            > 100 * crosslight.weight_imprint_power_per_mr_w()
        )

    def test_area_below_paper_envelope(self):
        assert DeapCnnAccelerator().area_mm2() <= 25.0


class TestHolyLight:
    def test_16_bit_via_8_microdisks(self):
        holy = HolyLightAccelerator()
        assert holy.resolution_bits == 16
        assert holy.disks_per_weight == 8

    def test_total_disk_count(self):
        holy = HolyLightAccelerator(n_units=10, unit_vector_size=4)
        assert holy.total_disks == 10 * 2 * 4 * 8

    def test_path_loss_dominated_by_ganged_disks(self):
        holy = HolyLightAccelerator()
        assert holy.unit_path_loss_db() > holy.disks_per_weight * holy.microdisk.insertion_loss_db

    def test_power_positive_and_area_bounded(self):
        holy = HolyLightAccelerator()
        assert holy.total_power_w > 0
        assert holy.area_mm2() <= 25.0

    def test_cycle_time_slower_than_crosslight(self):
        from repro.arch import CrossLightAccelerator

        holy = HolyLightAccelerator()
        crosslight = CrossLightAccelerator.from_variant("cross_opt_ted")
        assert holy.cycle_time_s() > crosslight.cycle_time_s()

    def test_invalid_parameters_rejected(self):
        with pytest.raises((TypeError, ValueError)):
            HolyLightAccelerator(n_units=0)


class TestElectronicReference:
    def test_all_six_platforms_present(self):
        assert len(ELECTRONIC_PLATFORMS) == 6
        names = {p.name for p in ELECTRONIC_PLATFORMS}
        assert {"P100", "IXP 9282", "AMD-TR", "DaDianNao", "Edge TPU", "Null Hop"} == names

    def test_table3_reference_values(self):
        p100 = electronic_platform("p100")
        assert p100.avg_epb_pj_per_bit == pytest.approx(971.31)
        assert p100.avg_kfps_per_watt == pytest.approx(24.9)

    def test_unknown_platform_raises(self):
        with pytest.raises(KeyError):
            electronic_platform("TPUv4")

    def test_paper_photonic_reference_complete(self):
        expected = {
            "DEAP_CNN",
            "Holylight",
            "Cross_base",
            "Cross_base_TED",
            "Cross_opt",
            "Cross_opt_TED",
        }
        assert set(PAPER_PHOTONIC_REFERENCE) == expected
        assert PAPER_PHOTONIC_REFERENCE["Cross_opt_TED"]["avg_epb_pj_per_bit"] == pytest.approx(28.78)
