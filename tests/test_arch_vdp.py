"""Tests for the VDP unit model: structure, optics, power, latency, behaviour."""

from __future__ import annotations

import pytest

from repro.arch import VDPUnit
from repro.devices import EO_TUNING, TO_TUNING


class TestStructure:
    def test_arm_count_follows_bank_size(self):
        assert VDPUnit(vector_size=15).n_arms == 1
        assert VDPUnit(vector_size=20).n_arms == 2
        assert VDPUnit(vector_size=150).n_arms == 10

    def test_wavelength_reuse_caps_wavelengths_per_arm(self):
        unit = VDPUnit(vector_size=150, mrs_per_bank=15)
        assert unit.wavelengths_per_arm == 15

    def test_small_vector_uses_fewer_wavelengths(self):
        assert VDPUnit(vector_size=8, mrs_per_bank=15).wavelengths_per_arm == 8

    def test_inventory_counts(self):
        unit = VDPUnit(vector_size=20, mrs_per_bank=15)
        inv = unit.inventory
        assert inv.n_arms == 2
        assert inv.mrs_per_arm == 30
        assert inv.total_mrs == 60
        assert inv.photodetectors == 5  # 2 per arm (balanced) + 1 accumulator
        assert inv.vcsels == 2
        assert inv.adc_channels == 1

    def test_paper_limit_30_mrs_per_arm(self):
        unit = VDPUnit(vector_size=150, mrs_per_bank=15)
        assert unit.inventory.mrs_per_arm == 30


class TestOptics:
    def test_fc_unit_has_higher_loss_than_conv_unit(self):
        conv = VDPUnit(vector_size=20)
        fc = VDPUnit(vector_size=150)
        assert fc.arm_path_loss_db() > conv.arm_path_loss_db()

    def test_tight_pitch_reduces_loss(self):
        ted = VDPUnit(vector_size=20, mr_pitch_um=5.0)
        spaced = VDPUnit(vector_size=20, mr_pitch_um=120.0)
        assert ted.arm_path_loss_db() < spaced.arm_path_loss_db()

    def test_laser_power_increases_with_loss(self):
        ted = VDPUnit(vector_size=20, mr_pitch_um=5.0)
        spaced = VDPUnit(vector_size=20, mr_pitch_um=120.0)
        assert ted.laser_power_w() < spaced.laser_power_w()

    def test_laser_power_reasonable_magnitude(self):
        # Per-unit laser power should be milliwatts, not watts.
        assert VDPUnit(vector_size=20).laser_power_w() < 0.1

    def test_accumulation_path_loss_positive(self):
        assert VDPUnit(vector_size=20).accumulation_path_loss_db() > 0


class TestPowerAndLatency:
    def test_receiver_power_scales_with_arms(self):
        small = VDPUnit(vector_size=20)
        large = VDPUnit(vector_size=150)
        assert large.receiver_power_w() > small.receiver_power_w()

    def test_converter_power_dac_share(self):
        unit = VDPUnit(vector_size=20)
        assert unit.converter_power_w(dac_share=0.5) < unit.converter_power_w(dac_share=1.0)
        with pytest.raises(ValueError):
            unit.converter_power_w(dac_share=0.0)

    def test_operation_latency_dominated_by_update_mechanism(self):
        unit = VDPUnit(vector_size=20)
        eo_latency = unit.operation_latency_s(EO_TUNING.latency_s)
        to_latency = unit.operation_latency_s(TO_TUNING.latency_s)
        assert to_latency > 100 * eo_latency
        assert eo_latency > EO_TUNING.latency_s  # includes detection chain

    def test_area_positive_and_grows_with_size(self):
        assert VDPUnit(vector_size=150).area_mm2() > VDPUnit(vector_size=20).area_mm2() > 0


class TestFunctionalBehaviour:
    def test_dot_product_matches_numpy(self, rng):
        unit = VDPUnit(vector_size=150, mrs_per_bank=15)
        weights = rng.normal(size=150)
        activations = rng.normal(size=150)
        assert unit.dot_product(weights, activations) == pytest.approx(
            float(weights @ activations), rel=1e-12
        )

    def test_dot_product_with_quantization_close_to_exact(self, rng):
        unit = VDPUnit(vector_size=20)
        weights = rng.uniform(-1, 1, size=20)
        activations = rng.uniform(0, 1, size=20)
        exact = float(weights @ activations)
        quantized = unit.dot_product(weights, activations, resolution_bits=16)
        coarse = unit.dot_product(weights, activations, resolution_bits=2)
        assert quantized == pytest.approx(exact, abs=1e-3)
        assert abs(coarse - exact) >= abs(quantized - exact)

    def test_dot_product_rejects_oversized_vector(self, rng):
        unit = VDPUnit(vector_size=20)
        with pytest.raises(ValueError):
            unit.dot_product(rng.normal(size=21), rng.normal(size=21))

    def test_dot_product_rejects_shape_mismatch(self, rng):
        unit = VDPUnit(vector_size=20)
        with pytest.raises(ValueError):
            unit.dot_product(rng.normal(size=10), rng.normal(size=12))

    def test_partial_vector_supported(self, rng):
        unit = VDPUnit(vector_size=20)
        weights = rng.normal(size=7)
        activations = rng.normal(size=7)
        assert unit.dot_product(weights, activations) == pytest.approx(
            float(weights @ activations)
        )
