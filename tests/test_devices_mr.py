"""Unit tests for the microring resonator device model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.devices import CONVENTIONAL_MR, OPTIMIZED_MR, MicroringResonator


class TestMRSpectrum:
    def test_on_resonance_transmission_is_extinction_limited(self):
        mr = MicroringResonator.optimized(extinction_ratio_db=20.0)
        assert mr.through_transmission(mr.resonance_nm) == pytest.approx(0.01, abs=1e-6)

    def test_far_off_resonance_transmission_is_near_unity(self):
        mr = MicroringResonator.optimized()
        half_fsr_away = mr.resonance_nm + mr.fsr_nm / 2.0
        assert mr.through_transmission(half_fsr_away) > 0.99

    def test_transmission_bounded_in_unit_interval(self):
        mr = MicroringResonator.optimized()
        wavelengths = np.linspace(1500.0, 1600.0, 2001)
        transmission = mr.through_transmission(wavelengths)
        assert np.all(transmission >= mr.min_transmission - 1e-12)
        assert np.all(transmission <= 1.0 + 1e-12)

    def test_fsr_periodicity(self):
        mr = MicroringResonator.optimized()
        t_here = mr.through_transmission(mr.resonance_nm + 0.3)
        t_next_order = mr.through_transmission(mr.resonance_nm + 0.3 + mr.fsr_nm)
        assert t_here == pytest.approx(t_next_order, rel=1e-9)

    def test_drop_is_complement_of_through(self):
        mr = MicroringResonator.optimized()
        wl = mr.resonance_nm + 0.05
        assert mr.drop_transmission(wl) == pytest.approx(1.0 - mr.through_transmission(wl))

    def test_fwhm_matches_q_definition(self):
        mr = MicroringResonator.optimized()
        assert mr.fwhm_nm == pytest.approx(mr.resonance_nm / mr.quality_factor)

    def test_half_transmission_at_half_width(self):
        mr = MicroringResonator.optimized(extinction_ratio_db=30.0)
        at_half_width = mr.through_transmission(mr.resonance_nm + mr.fwhm_nm / 2.0)
        # At one half-width the Lorentzian is at half depth.
        expected = 1.0 - (1.0 - mr.min_transmission) / 2.0
        assert at_half_width == pytest.approx(expected, rel=1e-9)


class TestMRTuning:
    def test_resonance_shift_accumulates_and_resets(self):
        mr = MicroringResonator.optimized()
        mr.apply_resonance_shift(0.5)
        mr.apply_resonance_shift(0.25)
        assert mr.resonance_nm == pytest.approx(mr.design.resonance_nm + 0.75)
        mr.reset_shift()
        assert mr.resonance_nm == pytest.approx(mr.design.resonance_nm)

    def test_temperature_shift_is_about_0p07_nm_per_kelvin(self):
        mr = MicroringResonator.optimized()
        shift = mr.shift_for_temperature_change(1.0)
        assert 0.05 < shift < 0.1

    def test_detuning_for_transmission_inverts_lorentzian(self):
        mr = MicroringResonator.optimized()
        for target in (0.1, 0.3, 0.5, 0.8, 0.95):
            detuning = mr.detuning_for_transmission(target)
            realised = mr.through_transmission(mr.resonance_nm + detuning)
            assert realised == pytest.approx(target, abs=1e-9)

    def test_detuning_monotone_in_target(self):
        mr = MicroringResonator.optimized()
        targets = np.linspace(0.05, 0.99, 30)
        detunings = [mr.detuning_for_transmission(t) for t in targets]
        assert all(b >= a for a, b in zip(detunings, detunings[1:]))

    def test_detuning_for_full_transmission_is_half_fsr(self):
        mr = MicroringResonator.optimized()
        assert mr.detuning_for_transmission(1.0) == pytest.approx(mr.fsr_nm / 2.0)

    def test_detuning_rejects_out_of_range_target(self):
        mr = MicroringResonator.optimized()
        with pytest.raises(ValueError):
            mr.detuning_for_transmission(1.5)

    def test_drift_error_zero_without_drift(self):
        mr = MicroringResonator.optimized()
        assert mr.transmission_error_from_drift(0.5, 0.0) == pytest.approx(0.0, abs=1e-12)

    def test_drift_error_grows_with_drift(self):
        mr = MicroringResonator.optimized()
        small = mr.transmission_error_from_drift(0.5, 0.01)
        large = mr.transmission_error_from_drift(0.5, 0.1)
        assert large > small > 0.0


class TestMRDesigns:
    def test_design_points_match_paper_drift(self):
        assert CONVENTIONAL_MR.fpv_drift_nm == pytest.approx(7.1)
        assert OPTIMIZED_MR.fpv_drift_nm == pytest.approx(2.1)

    def test_optimized_design_waveguide_widths(self):
        assert OPTIMIZED_MR.input_waveguide_width_nm == pytest.approx(400.0)
        assert OPTIMIZED_MR.ring_waveguide_width_nm == pytest.approx(800.0)

    def test_paper_q_and_fsr(self):
        assert OPTIMIZED_MR.quality_factor == pytest.approx(8000.0)
        assert OPTIMIZED_MR.fsr_nm == pytest.approx(18.0)

    def test_footprint_positive(self):
        mr = MicroringResonator.conventional()
        assert mr.footprint_um2 > 0
        assert mr.circumference_um == pytest.approx(2 * np.pi * mr.design.radius_um)

    def test_invalid_extinction_ratio_rejected(self):
        with pytest.raises(ValueError):
            MicroringResonator.optimized(extinction_ratio_db=-3.0)
