"""Unit tests for the low-level NN kernels (im2col, activations, softmax)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import functional as F


class TestConvLowering:
    def test_conv_output_size(self):
        assert F.conv_output_size(28, 5, 1, 0) == 24
        assert F.conv_output_size(28, 3, 1, 1) == 28
        assert F.conv_output_size(28, 2, 2, 0) == 14

    def test_conv_output_size_rejects_too_small_input(self):
        with pytest.raises(ValueError):
            F.conv_output_size(2, 5, 1, 0)

    def test_im2col_shape(self, rng):
        images = rng.random((2, 3, 8, 8))
        cols = F.im2col(images, 3, 3, stride=1, padding=0)
        assert cols.shape == (2 * 6 * 6, 3 * 3 * 3)

    def test_im2col_against_manual_patch(self, rng):
        images = rng.random((1, 1, 4, 4))
        cols = F.im2col(images, 2, 2, stride=1, padding=0)
        manual_first_patch = images[0, 0, 0:2, 0:2].reshape(-1)
        np.testing.assert_allclose(cols[0], manual_first_patch)

    def test_im2col_matmul_equals_direct_convolution(self, rng):
        images = rng.random((2, 2, 6, 6))
        kernels = rng.random((4, 2, 3, 3))
        cols = F.im2col(images, 3, 3)
        out = (cols @ kernels.reshape(4, -1).T).reshape(2, 4, 4, 4, order="C")
        # Direct (naive) convolution for comparison.
        direct = np.zeros((2, 4, 4, 4))
        for n in range(2):
            for f in range(4):
                for y in range(4):
                    for x in range(4):
                        patch = images[n, :, y : y + 3, x : x + 3]
                        direct[n, f, y, x] = np.sum(patch * kernels[f])
        reshaped = out.reshape(2, 4, 4, 4)
        # The matmul output is (n*out_h*out_w, F) -> verify via transpose path.
        cols_out = (cols @ kernels.reshape(4, -1).T).reshape(2, 4, 4, 4)
        np.testing.assert_allclose(cols_out.transpose(0, 3, 1, 2), direct, rtol=1e-10)
        assert reshaped.shape == cols_out.shape

    def test_col2im_is_adjoint_of_im2col(self, rng):
        # <im2col(x), y> == <x, col2im(y)> for random x, y (adjoint property).
        images = rng.random((2, 3, 6, 6))
        cols = F.im2col(images, 3, 3, stride=1, padding=1)
        random_cols = rng.random(cols.shape)
        lhs = float(np.sum(cols * random_cols))
        folded = F.col2im(random_cols, images.shape, 3, 3, stride=1, padding=1)
        rhs = float(np.sum(images * folded))
        assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_im2col_rejects_non_nchw(self, rng):
        with pytest.raises(ValueError):
            F.im2col(rng.random((3, 8, 8)), 3, 3)


class TestActivations:
    def test_relu_and_grad(self):
        x = np.array([-2.0, 0.0, 3.0])
        np.testing.assert_allclose(F.relu(x), [0.0, 0.0, 3.0])
        np.testing.assert_allclose(F.relu_grad(x), [0.0, 0.0, 1.0])

    def test_sigmoid_symmetry_and_stability(self):
        assert F.sigmoid(np.array([0.0]))[0] == pytest.approx(0.5)
        # Extreme inputs must not overflow.
        extreme = F.sigmoid(np.array([-1000.0, 1000.0]))
        np.testing.assert_allclose(extreme, [0.0, 1.0], atol=1e-12)

    def test_sigmoid_grad_matches_numerical(self):
        x = np.linspace(-3, 3, 13)
        eps = 1e-6
        numerical = (F.sigmoid(x + eps) - F.sigmoid(x - eps)) / (2 * eps)
        np.testing.assert_allclose(F.sigmoid_grad(x), numerical, atol=1e-6)

    def test_tanh_grad_matches_numerical(self):
        x = np.linspace(-2, 2, 9)
        eps = 1e-6
        numerical = (F.tanh(x + eps) - F.tanh(x - eps)) / (2 * eps)
        np.testing.assert_allclose(F.tanh_grad(x), numerical, atol=1e-6)


class TestSoftmax:
    def test_softmax_sums_to_one(self, rng):
        logits = rng.normal(size=(5, 7))
        probabilities = F.softmax(logits, axis=1)
        np.testing.assert_allclose(probabilities.sum(axis=1), 1.0)
        assert np.all(probabilities >= 0)

    def test_softmax_shift_invariance(self, rng):
        logits = rng.normal(size=(3, 4))
        np.testing.assert_allclose(
            F.softmax(logits), F.softmax(logits + 100.0), rtol=1e-10
        )

    def test_log_softmax_consistency(self, rng):
        logits = rng.normal(size=(4, 6))
        np.testing.assert_allclose(
            F.log_softmax(logits), np.log(F.softmax(logits)), rtol=1e-9
        )

    def test_softmax_handles_large_logits(self):
        logits = np.array([[1000.0, 1001.0]])
        probabilities = F.softmax(logits)
        assert np.all(np.isfinite(probabilities))


class TestOneHot:
    def test_one_hot_encoding(self):
        encoded = F.one_hot(np.array([0, 2, 1]), 3)
        np.testing.assert_allclose(encoded, [[1, 0, 0], [0, 0, 1], [0, 1, 0]])

    def test_one_hot_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            F.one_hot(np.array([0, 3]), 3)
