"""Tests for the functional photonic-inference engine and the ablation studies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import ablation
from repro.sim import (
    PhotonicInferenceEngine,
    accuracy_vs_residual_drift,
)


class TestPhotonicInferenceEngine:
    def test_zero_drift_high_resolution_matches_float_inference(self, trained_compact_lenet):
        model, test_x, test_y = trained_compact_lenet
        engine = PhotonicInferenceEngine(resolution_bits=16, residual_drift_nm=0.0)
        result = engine.evaluate(model, test_x, test_y)
        assert result.accuracy == pytest.approx(result.ideal_accuracy, abs=0.05)
        assert result.accuracy_loss <= 0.05

    def test_weights_restored_after_prediction(self, trained_compact_lenet):
        model, test_x, _ = trained_compact_lenet
        before = [p.copy() for layer in model.layers for p in layer.parameters().values()]
        engine = PhotonicInferenceEngine(resolution_bits=4, residual_drift_nm=0.5)
        engine.predict(model, test_x[:8])
        after = [p for layer in model.layers for p in layer.parameters().values()]
        for original, restored in zip(before, after):
            np.testing.assert_allclose(original, restored)

    def test_large_drift_degrades_accuracy(self, trained_compact_lenet):
        model, test_x, test_y = trained_compact_lenet
        clean = PhotonicInferenceEngine(residual_drift_nm=0.0).evaluate(model, test_x, test_y)
        drifted = PhotonicInferenceEngine(residual_drift_nm=2.1).evaluate(model, test_x, test_y)
        assert drifted.accuracy <= clean.accuracy

    def test_perturbed_weights_quantized_without_drift(self, rng):
        engine = PhotonicInferenceEngine(resolution_bits=3, residual_drift_nm=0.0)
        weights = rng.normal(size=(6, 6))
        perturbed = engine.perturbed_weights(weights)
        assert len(np.unique(np.round(perturbed, 9))) <= 8

    def test_perturbed_weights_change_with_drift(self, rng):
        weights = rng.normal(size=(5, 5))
        clean = PhotonicInferenceEngine(residual_drift_nm=0.0).perturbed_weights(weights)
        drifted = PhotonicInferenceEngine(residual_drift_nm=1.0).perturbed_weights(weights)
        assert not np.allclose(clean, drifted)

    def test_zero_weights_unchanged(self):
        engine = PhotonicInferenceEngine(residual_drift_nm=1.0)
        np.testing.assert_allclose(engine.perturbed_weights(np.zeros((3, 3))), 0.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises((TypeError, ValueError)):
            PhotonicInferenceEngine(resolution_bits=0)
        with pytest.raises(ValueError):
            PhotonicInferenceEngine(residual_drift_nm=-1.0)

    def test_drift_sweep_returns_one_result_per_point(self, trained_compact_lenet):
        model, test_x, test_y = trained_compact_lenet
        results = accuracy_vs_residual_drift(model, test_x, test_y, (0.0, 0.5))
        assert [r.residual_drift_nm for r in results] == [0.0, 0.5]
        assert all(0.0 <= r.accuracy <= 1.0 for r in results)


class TestAblationStudies:
    def test_wavelength_reuse_saves_laser_power(self):
        result = ablation.wavelength_reuse_ablation(vector_size=150)
        assert result.reuse_laser_power_w < result.no_reuse_laser_power_w
        assert result.saving_ratio > 1.5

    def test_bank_size_sweep_tradeoff(self):
        points = ablation.bank_size_ablation(sizes=(5, 15, 30))
        by_size = {p.mrs_per_bank: p for p in points}
        # Larger banks cost resolution but those larger banks carry more
        # wavelengths (more laser power) and more area.
        assert by_size[30].resolution_bits < by_size[5].resolution_bits
        assert by_size[30].laser_power_w > by_size[5].laser_power_w
        assert by_size[30].bank_area_mm2 > by_size[5].bank_area_mm2
        # The paper's 15-MR choice still delivers 16 bits.
        assert by_size[15].resolution_bits >= 16

    def test_tuning_latency_ablation_speedup(self):
        result = ablation.tuning_latency_ablation()
        assert result.to_cycle_time_s > result.eo_cycle_time_s
        assert result.speedup > 50.0

    def test_run_without_training_is_fast_and_complete(self):
        result = ablation.run(include_drift_accuracy=False)
        assert result.drift_accuracy == ()
        assert result.fpv_monte_carlo is None
        assert result.wavelength_reuse.saving_ratio > 1.0
        assert len(result.bank_size_sweep) == 6

    def test_fpv_monte_carlo_ablation_and_rendering(self):
        # Reduced scale: the barely-trained model cannot show the accuracy
        # recovery, but the plumbing (two Monte-Carlo sweeps, stats,
        # rendering) is exercised end to end.
        result = ablation.fpv_monte_carlo_ablation(
            seeds=2, epochs=2, n_train=80, n_test=40
        )
        assert result.uncompensated.seeds == (0, 1)
        assert result.compensated.seeds == (0, 1)
        for study in (result.uncompensated, result.compensated):
            assert 0.0 <= study.mean_accuracy <= 1.0
            assert study.std_accuracy >= 0.0
            assert "fpv-drift" in study.noise
        # The compensated stack applies a much smaller residual drift.
        uncompensated_channel = result.uncompensated.noise
        compensated_channel = result.compensated.noise
        assert uncompensated_channel != compensated_channel
        rendered = ablation.format_fpv_monte_carlo(result)
        assert "Ablation 5" in rendered
        assert "TED/hybrid tuning" in rendered
        assert "Accuracy recovered" in rendered
