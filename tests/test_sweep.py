"""Tests for the unified parameter-sweep engine and its memoization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.sweep import SweepPoint, SweepResult, grid, memoize, run_sweep, zipped
from repro.utils.cache import CacheInfo


def _product(x, y=1):
    """Module-level evaluation function so the process-pool path can pickle it."""
    return x * y


class TestGrid:
    def test_cartesian_product_first_axis_slowest(self):
        points = grid(a=(1, 2), b=(3, 4))
        assert points == [
            {"a": 1, "b": 3},
            {"a": 1, "b": 4},
            {"a": 2, "b": 3},
            {"a": 2, "b": 4},
        ]

    def test_single_axis(self):
        assert grid(x=(1, 2, 3)) == [{"x": 1}, {"x": 2}, {"x": 3}]

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError):
            grid(a=(1, 2), b=())

    def test_no_axes_rejected(self):
        with pytest.raises(ValueError):
            grid()


class TestZipped:
    def test_lockstep_combination(self):
        points = zipped(a=(1, 2), b=(3, 4))
        assert points == [{"a": 1, "b": 3}, {"a": 2, "b": 4}]

    def test_unequal_lengths_rejected(self):
        with pytest.raises(ValueError):
            zipped(a=(1, 2), b=(3, 4, 5))

    def test_no_axes_rejected(self):
        with pytest.raises(ValueError):
            zipped()


class TestRunSweep:
    def test_serial_sweep_preserves_order_and_params(self):
        result = run_sweep(_product, grid(x=(1, 2), y=(10, 20)))
        assert isinstance(result, SweepResult)
        assert result.values == (10, 20, 20, 40)
        assert result.param("x") == [1, 1, 2, 2]
        assert [point.index for point in result] == [0, 1, 2, 3]

    def test_point_records_keep_params_next_to_value(self):
        result = run_sweep(_product, [{"x": 3, "y": 7}])
        point = result.points[0]
        assert isinstance(point, SweepPoint)
        assert point.params == {"x": 3, "y": 7}
        assert point.value == 21

    def test_value_array_and_param_array(self):
        result = run_sweep(_product, zipped(x=(1, 2, 3), y=(2, 2, 2)))
        np.testing.assert_array_equal(result.value_array(), [2, 4, 6])
        np.testing.assert_array_equal(result.param_array("x"), [1, 2, 3])
        np.testing.assert_array_equal(result.value_array(lambda v: v + 1), [3, 5, 7])

    def test_empty_sweep(self):
        result = run_sweep(_product, [])
        assert result.values == ()
        assert len(result) == 0

    def test_non_mapping_point_rejected(self):
        with pytest.raises(TypeError):
            run_sweep(_product, [3])

    @pytest.mark.parametrize("n_workers", [None, 0, 1])
    def test_serial_worker_counts(self, n_workers):
        result = run_sweep(_product, grid(x=(1, 2, 3)), n_workers=n_workers)
        assert result.values == (1, 2, 3)

    def test_process_pool_matches_serial(self):
        points = grid(x=(1, 2, 3, 4), y=(5,))
        serial = run_sweep(_product, points)
        parallel = run_sweep(_product, points, n_workers=2)
        assert parallel.values == serial.values

    def test_more_workers_than_points(self):
        result = run_sweep(_product, grid(x=(1, 2)), n_workers=16)
        assert result.values == (1, 2)

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError):
            run_sweep(_product, grid(x=(1, 2)), n_workers=-1)

    def test_non_int_workers_rejected(self):
        with pytest.raises(TypeError):
            run_sweep(_product, grid(x=(1, 2)), n_workers=2.0)

    def test_single_point_with_workers_stays_serial(self):
        # One point never justifies a pool; a lambda (unpicklable) proves the
        # engine did not ship it to a worker process.
        result = run_sweep(lambda x: x + 1, [{"x": 41}], n_workers=4)
        assert result.values == (42,)


class TestMemoize:
    def test_hits_and_misses_counted(self):
        calls = []

        @memoize(maxsize=4)
        def fn(a, b):
            calls.append((a, b))
            return a + b

        assert fn(1, 2) == 3
        assert fn(1, 2) == 3
        assert fn(2, 3) == 5
        info = fn.cache_info()
        assert isinstance(info, CacheInfo)
        assert info.hits == 1
        assert info.misses == 2
        assert info.currsize == 2
        assert calls == [(1, 2), (2, 3)]

    def test_lru_eviction(self):
        @memoize(maxsize=2)
        def fn(x):
            return x * 10

        fn(1), fn(2), fn(1)  # 1 is now most recently used
        fn(3)  # evicts 2
        assert fn.cache_info().currsize == 2
        fn(2)  # miss again
        assert fn.cache_info().misses == 4  # 1, 2, 3, 2

    def test_cache_clear(self):
        @memoize(maxsize=4)
        def fn(x):
            return x

        fn(1), fn(1)
        fn.cache_clear()
        info = fn.cache_info()
        assert (info.hits, info.misses, info.currsize) == (0, 0, 0)

    def test_kwargs_participate_in_key(self):
        @memoize(maxsize=4)
        def fn(x, scale=1):
            return x * scale

        assert fn(2) == 2
        assert fn(2, scale=3) == 6
        assert fn.cache_info().misses == 2

    def test_invalid_maxsize_rejected(self):
        with pytest.raises(ValueError):
            memoize(maxsize=0)


class TestSharedSubResultCaches:
    def test_crosstalk_matrix_memoized_and_read_only(self):
        from repro.variations.thermal import ThermalCrosstalkModel

        model = ThermalCrosstalkModel()
        first = model.crosstalk_matrix(10, 5.0)
        second = model.crosstalk_matrix(10, 5.0)
        assert first is second  # cache hit returns the shared array
        assert not first.flags.writeable
        # Equal-parameter models share entries; different parameters do not.
        assert ThermalCrosstalkModel().crosstalk_matrix(10, 5.0) is first
        assert model.crosstalk_matrix(10, 6.0) is not first

    def test_ted_eigensystem_memoized(self):
        from repro.tuning.ted import ThermalEigenmodeDecomposition

        ted = ThermalEigenmodeDecomposition()
        ev1, vec1 = ted.eigenmodes(8, 5.0)
        ev2, vec2 = ted.eigenmodes(8, 5.0)
        assert ev1 is ev2 and vec1 is vec2
        assert not ev1.flags.writeable and not vec1.flags.writeable

    def test_ted_solve_matches_direct_linear_solve(self):
        from repro.tuning.ted import ThermalEigenmodeDecomposition

        ted = ThermalEigenmodeDecomposition()
        phases = np.full(10, np.pi / 2)
        result = ted.solve(phases, pitch_um=40.0)  # wide pitch: no clipping
        matrix = ted.crosstalk.crosstalk_matrix(10, 40.0)
        eta = ted.crosstalk.self_heating_phase_per_watt
        expected = np.linalg.solve(matrix, phases / eta)
        np.testing.assert_allclose(result.ted_powers_w, expected, rtol=1e-9)

    def test_ideal_accuracy_cached_across_engines(self):
        from repro.nn.datasets import sign_mnist_synthetic
        from repro.nn.zoo import build_model
        from repro.sim.photonic_inference import (
            _IDEAL_ACCURACY_CACHE,
            PhotonicInferenceEngine,
            clear_ideal_accuracy_cache,
        )

        train_x, train_y, test_x, test_y = sign_mnist_synthetic(n_train=40, n_test=30)
        model = build_model(1, compact=True)
        clear_ideal_accuracy_cache()
        first = PhotonicInferenceEngine(residual_drift_nm=0.0).evaluate(
            model, test_x, test_y
        )
        hits_before = _IDEAL_ACCURACY_CACHE.hits
        second = PhotonicInferenceEngine(residual_drift_nm=0.1).evaluate(
            model, test_x, test_y
        )
        assert _IDEAL_ACCURACY_CACHE.hits == hits_before + 1
        assert second.ideal_accuracy == first.ideal_accuracy
        # Content keying: a logically-equal copy of the dataset hits the
        # same entry (sweep workers unpickle fresh objects every trial).
        other_x = test_x.copy()
        PhotonicInferenceEngine(residual_drift_nm=0.0).evaluate(model, other_x, test_y)
        assert _IDEAL_ACCURACY_CACHE.hits == hits_before + 2
        # Retraining the cached model in place changes its weight fingerprint,
        # so the stale baseline is recomputed rather than reused.
        misses_before = _IDEAL_ACCURACY_CACHE.misses
        model.fit(train_x, train_y, epochs=1, batch_size=16, seed=1)
        PhotonicInferenceEngine(residual_drift_nm=0.0).evaluate(model, test_x, test_y)
        assert _IDEAL_ACCURACY_CACHE.misses == misses_before + 1
        # Mutating the dataset arrays in place (same objects) also misses.
        misses_before = _IDEAL_ACCURACY_CACHE.misses
        test_y[...] = (test_y + 1) % 10
        result = PhotonicInferenceEngine(residual_drift_nm=0.0).evaluate(
            model, test_x, test_y
        )
        assert _IDEAL_ACCURACY_CACHE.misses == misses_before + 1
        assert result.ideal_accuracy == model.evaluate(test_x, test_y)
        clear_ideal_accuracy_cache()
        assert _IDEAL_ACCURACY_CACHE.hits == 0
