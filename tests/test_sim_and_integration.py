"""Simulator tests and cross-module integration tests of the paper's claims."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch import CrossLightAccelerator
from repro.baselines import DeapCnnAccelerator, HolyLightAccelerator
from repro.nn import build_model
from repro.sim import (
    accelerated_workloads,
    default_accelerators,
    format_ratio,
    format_table,
    simulate_model,
    simulate_models,
    summarize,
    trace_model,
)


class TestTracer:
    def test_trace_lenet_layer_kinds(self, lenet_full):
        workloads = trace_model(lenet_full)
        kinds = [w.kind for w in workloads if w.kind in ("conv", "fc")]
        assert kinds == ["conv", "conv", "fc", "fc"]

    def test_accelerated_workloads_filtered(self, lenet_full):
        accelerated = accelerated_workloads(lenet_full)
        assert all(w.kind in ("conv", "fc") for w in accelerated)
        assert len(accelerated) == 4

    def test_summary_mac_counts(self, lenet_full):
        summary = summarize(lenet_full)
        assert summary.n_conv_layers == 2
        assert summary.n_fc_layers == 2
        assert summary.total_macs == summary.conv_macs + summary.fc_macs
        # LeNet-5 is a few hundred thousand MACs per inference.
        assert 1e5 < summary.total_macs < 1e6

    def test_siamese_macs_double_trunk(self, full_models):
        siamese = full_models[4]
        assert summarize(siamese).total_macs == 2 * sum(
            w.macs for w in siamese.trunk.workloads() if w.kind in ("conv", "fc")
        )

    def test_trace_rejects_unknown_types(self):
        with pytest.raises(TypeError):
            trace_model(object())


class TestSimulator:
    def test_simulate_model_report_fields(self, best_accelerator, lenet_full):
        report = simulate_model(best_accelerator, lenet_full)
        assert report.accelerator == "Cross_opt_TED"
        assert report.latency_s > 0
        assert report.energy_j > 0

    def test_aggregate_over_models(self, best_accelerator, full_models):
        agg = simulate_models(best_accelerator, full_models)
        assert len(agg.reports) == 4
        assert agg.avg_epb_pj_per_bit > 0

    def test_simulate_models_preserves_caller_ordering(self, best_accelerator, full_models):
        # Insertion order wins -- keys are never sorted, so a reversed
        # mapping yields reversed reports.
        reversed_models = dict(reversed(list(full_models.items())))
        agg = simulate_models(best_accelerator, reversed_models)
        expected = [m.name for m in reversed_models.values()]
        assert [r.model for r in agg.reports] == expected

    def test_simulate_models_accepts_string_keyed_mapping(self, best_accelerator, full_models):
        named = {f"model-{index}": model for index, model in full_models.items()}
        agg = simulate_models(best_accelerator, named)
        assert [r.model for r in agg.reports] == [m.name for m in named.values()]

    def test_simulate_models_accepts_plain_iterable(self, best_accelerator, full_models):
        models = list(full_models.values())[:2]
        agg = simulate_models(best_accelerator, models)
        assert [r.model for r in agg.reports] == [m.name for m in models]

    def test_default_accelerators_roster(self):
        names = [a.name for a in default_accelerators()]
        assert names == [
            "DEAP_CNN",
            "Holylight",
            "Cross_base",
            "Cross_base_TED",
            "Cross_opt",
            "Cross_opt_TED",
        ]

    def test_comparison_lookup(self, comparison):
        assert comparison.by_name("Cross_opt_TED").accelerator == "Cross_opt_TED"
        with pytest.raises(KeyError):
            comparison.by_name("nonexistent")

    def test_bigger_model_takes_longer(self, best_accelerator, full_models):
        small = simulate_model(best_accelerator, full_models[1])
        big = simulate_model(best_accelerator, full_models[4])
        assert big.latency_s > small.latency_s


class TestFormatting:
    def test_format_table_alignment_and_floats(self):
        table = format_table(["Name", "Value"], [["a", 1.2345], ["bb", 2.0]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "1.23" in table

    def test_format_table_validates_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_format_ratio(self):
        assert format_ratio(10.0, 95.0) == "9.5x"
        with pytest.raises(ValueError):
            format_ratio(0.0, 1.0)


class TestPaperClaims:
    """Integration tests for the headline comparisons (Figs. 7-8, Table III)."""

    def test_epb_ordering_across_photonic_accelerators(self, comparison):
        epb = {agg.accelerator: agg.avg_epb_pj_per_bit for agg in comparison.aggregates}
        assert (
            epb["DEAP_CNN"]
            > epb["Holylight"]
            > epb["Cross_base"]
            > epb["Cross_base_TED"]
            > epb["Cross_opt"]
            > epb["Cross_opt_TED"]
        )

    def test_perf_per_watt_ordering_is_reverse_of_epb(self, comparison):
        kfps = {agg.accelerator: agg.avg_kfps_per_watt for agg in comparison.aggregates}
        assert (
            kfps["Cross_opt_TED"]
            > kfps["Cross_opt"]
            > kfps["Cross_base_TED"]
            > kfps["Cross_base"]
            > kfps["Holylight"]
            > kfps["DEAP_CNN"]
        )

    def test_improvement_over_holylight_roughly_matches_paper(self, comparison):
        crosslight = comparison.by_name("Cross_opt_TED")
        holylight = comparison.by_name("Holylight")
        epb_ratio = holylight.avg_epb_pj_per_bit / crosslight.avg_epb_pj_per_bit
        perf_ratio = crosslight.avg_kfps_per_watt / holylight.avg_kfps_per_watt
        # Paper: 9.5x lower EPB and 15.9x higher kFPS/W.  Accept the same
        # order of magnitude (factor-of-two band around the paper values).
        assert 4.0 < epb_ratio < 30.0
        assert 8.0 < perf_ratio < 35.0

    def test_improvement_over_deap_cnn_is_orders_of_magnitude(self, comparison):
        crosslight = comparison.by_name("Cross_opt_TED")
        deap = comparison.by_name("DEAP_CNN")
        assert deap.avg_epb_pj_per_bit / crosslight.avg_epb_pj_per_bit > 100.0

    def test_crosslight_power_below_cpu_gpu_but_above_edge_asics(self, comparison):
        from repro.baselines import electronic_platform

        crosslight_power = comparison.by_name("Cross_opt_TED").power_w
        assert crosslight_power < electronic_platform("P100").power_w
        assert crosslight_power < electronic_platform("IXP 9282").power_w
        assert crosslight_power > electronic_platform("Edge TPU").power_w

    def test_crosslight_variant_power_monotone_in_optimizations(self, comparison):
        powers = [
            comparison.by_name(name).power_w
            for name in ("Cross_base", "Cross_base_TED", "Cross_opt", "Cross_opt_TED")
        ]
        assert powers == sorted(powers, reverse=True)

    def test_per_model_epb_ordering_holds_for_every_model(self, full_models):
        best = CrossLightAccelerator.from_variant("cross_opt_ted")
        deap = DeapCnnAccelerator()
        holy = HolyLightAccelerator()
        for index, model in full_models.items():
            epb_best = simulate_model(best, model).epb_pj_per_bit
            epb_holy = simulate_model(holy, model).epb_pj_per_bit
            epb_deap = simulate_model(deap, model).epb_pj_per_bit
            assert epb_best < epb_holy < epb_deap, f"ordering broken for model {index}"

    def test_functional_equivalence_of_photonic_mapping(self, rng):
        """A compact model's logits computed through VDP-style decomposed
        dot products (at 16-bit resolution) match the direct NumPy forward
        pass closely enough to preserve the predicted class."""
        from repro.arch import matvec_via_vdp
        from repro.nn import quantize_array

        model = build_model(1, compact=True)
        x = rng.random((4, 1, 16, 16))
        logits_direct = model.predict(x)

        # Recompute the final FC layer through the decomposed path.
        features = x
        for layer in model.layers[:-1]:
            layer.eval()
            features = layer.forward(features)
        final = model.layers[-1]
        weight = quantize_array(final.weight, 16)
        decomposed_logits = np.stack(
            [
                matvec_via_vdp(weight.T, quantize_array(sample, 16), chunk_size=15)
                + final.bias
                for sample in features
            ]
        )
        assert np.argmax(decomposed_logits, axis=1).tolist() == np.argmax(
            logits_direct, axis=1
        ).tolist()
