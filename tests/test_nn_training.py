"""Tests for losses, optimizers, model training, datasets, and the model zoo."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    Adam,
    ContrastiveLoss,
    Dense,
    MODEL_SPECS,
    MeanSquaredError,
    ReLU,
    SGD,
    Sequential,
    SiameseModel,
    SoftmaxCrossEntropy,
    accuracy,
    build_model,
    cifar10_synthetic,
    dataset_for_model,
    make_classification_dataset,
    model_spec,
    omniglot_synthetic_pairs,
    pair_accuracy,
    sign_mnist_synthetic,
    stl10_synthetic,
)
from repro.nn.datasets import SIGN_MNIST_SPEC, STL10_SPEC


class TestLosses:
    def test_cross_entropy_perfect_prediction_is_small(self):
        logits = np.array([[10.0, -10.0], [-10.0, 10.0]])
        loss, grad = SoftmaxCrossEntropy()(logits, np.array([0, 1]))
        assert loss < 1e-4
        assert grad.shape == logits.shape

    def test_cross_entropy_gradient_direction(self):
        logits = np.zeros((1, 3))
        _, grad = SoftmaxCrossEntropy()(logits, np.array([1]))
        # Gradient pushes the true-class logit up (negative gradient).
        assert grad[0, 1] < 0
        assert grad[0, 0] > 0 and grad[0, 2] > 0

    def test_cross_entropy_gradient_check(self, rng):
        logits = rng.normal(size=(3, 4))
        labels = np.array([0, 2, 1])
        loss_fn = SoftmaxCrossEntropy()
        _, analytic = loss_fn(logits, labels)
        eps = 1e-6
        numeric = np.zeros_like(logits)
        for idx in np.ndindex(logits.shape):
            logits[idx] += eps
            plus, _ = loss_fn(logits, labels)
            logits[idx] -= 2 * eps
            minus, _ = loss_fn(logits, labels)
            logits[idx] += eps
            numeric[idx] = (plus - minus) / (2 * eps)
        np.testing.assert_allclose(analytic, numeric, rtol=1e-4, atol=1e-7)

    def test_mse_zero_for_exact_match(self, rng):
        values = rng.normal(size=(4, 2))
        loss, grad = MeanSquaredError()(values, values.copy())
        assert loss == pytest.approx(0.0)
        np.testing.assert_allclose(grad, 0.0)

    def test_contrastive_loss_behaviour(self):
        loss_fn = ContrastiveLoss(margin=1.0)
        # Same pair at zero distance: no loss; different pair at zero: max loss.
        same_loss, _ = loss_fn(np.array([0.0]), np.array([1]))
        diff_loss, _ = loss_fn(np.array([0.0]), np.array([0]))
        assert same_loss == pytest.approx(0.0)
        assert diff_loss == pytest.approx(1.0)
        # Different pair beyond the margin: no loss.
        far_loss, _ = loss_fn(np.array([2.0]), np.array([0]))
        assert far_loss == pytest.approx(0.0)

    def test_accuracy_helpers(self):
        logits = np.array([[0.9, 0.1], [0.2, 0.8], [0.6, 0.4]])
        assert accuracy(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)
        distances = np.array([0.1, 0.9])
        assert pair_accuracy(distances, np.array([1, 0]), threshold=0.5) == 1.0


class TestOptimizers:
    def _quadratic_layer(self):
        layer = Dense(1, 1, use_bias=False, rng=np.random.default_rng(0))
        layer.weight[...] = np.array([[5.0]])
        return layer

    def test_sgd_converges_on_quadratic(self):
        layer = self._quadratic_layer()
        optimizer = SGD(learning_rate=0.1)
        for _ in range(100):
            layer._grad_weight = 2 * layer.weight  # d/dw of w^2
            optimizer.step([layer])
        assert abs(layer.weight[0, 0]) < 1e-3

    def test_sgd_momentum_converges_faster(self):
        plain_layer = self._quadratic_layer()
        momentum_layer = self._quadratic_layer()
        plain = SGD(learning_rate=0.02)
        momentum = SGD(learning_rate=0.02, momentum=0.9)
        for _ in range(50):
            plain_layer._grad_weight = 2 * plain_layer.weight
            plain.step([plain_layer])
            momentum_layer._grad_weight = 2 * momentum_layer.weight
            momentum.step([momentum_layer])
        assert abs(momentum_layer.weight[0, 0]) < abs(plain_layer.weight[0, 0])

    def test_adam_converges_on_quadratic(self):
        layer = self._quadratic_layer()
        optimizer = Adam(learning_rate=0.3)
        for _ in range(200):
            layer._grad_weight = 2 * layer.weight
            optimizer.step([layer])
        assert abs(layer.weight[0, 0]) < 1e-2

    def test_invalid_hyperparameters_rejected(self):
        with pytest.raises(ValueError):
            SGD(learning_rate=-0.1)
        with pytest.raises(ValueError):
            SGD(momentum=1.5)
        with pytest.raises(ValueError):
            Adam(beta1=1.0)


class TestSequentialTraining:
    def test_small_mlp_learns_separable_data(self, rng):
        # Two well-separated Gaussian blobs in 2-D.
        n = 200
        x = np.concatenate([rng.normal(-2, 0.5, (n, 2)), rng.normal(2, 0.5, (n, 2))])
        y = np.concatenate([np.zeros(n, dtype=int), np.ones(n, dtype=int)])
        model = Sequential(
            [Dense(2, 16, rng=rng), ReLU(), Dense(16, 2, rng=rng)], input_shape=(2,)
        )
        history = model.fit(x, y, epochs=10, batch_size=32, seed=0)
        assert history.final_accuracy > 0.95
        assert history.losses[-1] < history.losses[0]

    def test_predict_batching_consistent(self, rng):
        model = Sequential([Dense(4, 3, rng=rng)], input_shape=(4,))
        x = rng.normal(size=(37, 4))
        np.testing.assert_allclose(model.predict(x, batch_size=8), model.predict(x, batch_size=64))

    def test_model_summary_and_counts(self):
        model = build_model(1, compact=True)
        summary = model.summary()
        assert "Total parameters" in summary
        assert model.count_layers("conv") == 2
        assert model.count_layers("fc") == 2

    def test_empty_model_rejected(self):
        with pytest.raises(ValueError):
            Sequential([], input_shape=(2,))


class TestDatasets:
    def test_shapes_and_ranges(self):
        train_x, train_y, test_x, test_y = sign_mnist_synthetic(n_train=50, n_test=20)
        assert train_x.shape == (50, 1, 16, 16)
        assert test_x.shape == (20, 1, 16, 16)
        assert train_x.min() >= 0.0 and train_x.max() <= 1.0
        assert set(np.unique(train_y)).issubset(set(range(10)))

    def test_determinism_given_seed(self):
        a = cifar10_synthetic(n_train=30, n_test=10)
        b = cifar10_synthetic(n_train=30, n_test=10)
        np.testing.assert_allclose(a[0], b[0])
        np.testing.assert_allclose(a[1], b[1])

    def test_harder_dataset_has_more_noise(self):
        easy = make_classification_dataset(SIGN_MNIST_SPEC, 50, 10, noise=0.05, seed=0)
        hard = make_classification_dataset(STL10_SPEC, 50, 10, noise=0.4, seed=0)
        assert easy[0].shape[1:] == SIGN_MNIST_SPEC.image_shape
        assert hard[0].shape[1:] == STL10_SPEC.image_shape

    def test_omniglot_pairs_balanced(self):
        _, _, labels, _, _, _ = omniglot_synthetic_pairs(n_train_pairs=400, n_test_pairs=10)
        assert 0.35 < labels.mean() < 0.65

    def test_dataset_for_model_dispatch(self):
        assert len(dataset_for_model(1, 20, 10)) == 4
        assert len(dataset_for_model(4, 20, 10)) == 6
        with pytest.raises(ValueError):
            dataset_for_model(5)

    def test_stl10_shape(self):
        train_x, *_ = stl10_synthetic(n_train=10, n_test=5)
        assert train_x.shape == (10, 3, 24, 24)


class TestModelZoo:
    def test_table1_layer_counts(self, full_models):
        for spec in MODEL_SPECS:
            model = full_models[spec.index]
            conv = model.count_layers("conv")
            fc = model.count_layers("fc")
            if isinstance(model, SiameseModel):
                conv, fc = 2 * conv, 2 * fc
            assert conv == spec.conv_layers
            assert fc == spec.fc_layers

    def test_table1_parameter_counts_within_5_percent(self, full_models):
        for spec in MODEL_SPECS:
            params = full_models[spec.index].n_parameters
            assert params == pytest.approx(spec.paper_parameters, rel=0.05)

    def test_siamese_parameters_exactly_match_paper(self, full_models):
        assert full_models[4].n_parameters == 38_951_745

    def test_compact_models_are_much_smaller(self):
        for index in (1, 2, 3):
            compact = build_model(index, compact=True)
            assert compact.n_parameters < model_spec(index).paper_parameters / 5

    def test_siamese_workloads_count_both_branches(self, full_models):
        siamese = full_models[4]
        trunk_macs = sum(w.macs for w in siamese.trunk.workloads())
        pair_macs = sum(w.macs for w in siamese.workloads())
        assert pair_macs == 2 * trunk_macs

    def test_invalid_model_index_rejected(self):
        with pytest.raises(ValueError):
            build_model(7)

    def test_forward_pass_shapes(self, rng):
        model = build_model(2, compact=True)
        x = rng.random((3, 3, 16, 16))
        assert model.forward(x).shape == (3, 10)
