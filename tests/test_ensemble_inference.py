"""Tests for ensemble-vectorized inference (PR 3).

The contract under test: evaluating E perturbed realisations of a model
through the fused ensemble path -- stacked weight perturbation
(``apply_many``/``apply_stacked``), stacked layer forwards, chunking over
members and batches -- is **elementwise identical** at float64 to running E
sequential :class:`repro.sim.photonic_inference.PhotonicInferenceEngine`
evaluations, for every built-in noise channel and for composed stacks.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.layers import AvgPool2D, BatchNorm, Conv2D, Dense, Dropout, Flatten, ReLU
from repro.nn.model import Sequential
from repro.nn.quantization import quantize_array, quantize_array_stack
from repro.sim import (
    EnsembleInferenceEngine,
    FPVDriftChannel,
    InterChannelCrosstalkChannel,
    NoiseStack,
    PhotonicInferenceEngine,
    QuantizationChannel,
    ResidualDriftChannel,
    ThermalCrosstalkChannel,
    default_noise_stack,
    evaluate_ensemble,
    monte_carlo_accuracy,
)
from repro.sim.noise import ensemble_apply
from repro.sim.sweep import SweepExecutor, plan_chunks, run_sweep

#: Every built-in channel at a non-trivial operating point, plus stacks.
CHANNELS = [
    QuantizationChannel(bits=6),
    QuantizationChannel(bits=1),
    QuantizationChannel(bits=None),
    ResidualDriftChannel(residual_drift_nm=0.8),
    FPVDriftChannel(),
    InterChannelCrosstalkChannel(calibration_rejection_db=20.0),
    ThermalCrosstalkChannel(coupling_scale=0.05),
    default_noise_stack(resolution_bits=8, residual_drift_nm=0.5),
    NoiseStack(
        [
            QuantizationChannel(bits=8),
            FPVDriftChannel(),
            InterChannelCrosstalkChannel(calibration_rejection_db=25.0),
            ThermalCrosstalkChannel(coupling_scale=0.03),
        ]
    ),
]


def _member_ids(value):
    return value.describe() if hasattr(value, "describe") else repr(value)


# ---------------------------------------------------------------------- #
# Channel-level identity
# ---------------------------------------------------------------------- #
class TestApplyManyIdentity:
    @settings(max_examples=20, deadline=None)
    @given(
        data_seed=st.integers(min_value=0, max_value=2**16),
        n_members=st.integers(min_value=1, max_value=7),
        seed0=st.integers(min_value=0, max_value=2**16),
        channel_index=st.integers(min_value=0, max_value=len(CHANNELS) - 1),
        shape=st.sampled_from([(9,), (7, 5), (4, 3, 3, 3)]),
    )
    def test_apply_many_matches_sequential_loop(
        self, data_seed, n_members, seed0, channel_index, shape
    ):
        """apply_many == stacking E sequential apply calls, elementwise."""
        channel = CHANNELS[channel_index]
        weights = np.random.default_rng(data_seed).normal(size=shape)
        seeds = [seed0 + member for member in range(n_members)]
        fused = channel.apply_many(weights, [np.random.default_rng(s) for s in seeds])
        reference = np.stack(
            [
                np.asarray(channel.apply(weights, np.random.default_rng(s)), dtype=float)
                for s in seeds
            ]
        )
        np.testing.assert_array_equal(fused, reference)
        assert fused.shape == (n_members, *shape)
        assert fused.flags.writeable

    @pytest.mark.parametrize("channel", CHANNELS, ids=_member_ids)
    def test_apply_stacked_on_diverged_members(self, channel, rng):
        """apply_stacked treats each member independently (own dynamic range)."""
        members = np.stack(
            [rng.normal(size=(6, 5)), np.zeros((6, 5)), 3.0 * rng.normal(size=(6, 5))]
        )
        rngs = [np.random.default_rng(seed) for seed in (11, 12, 13)]
        fused = ensemble_apply(channel, members, rngs)
        reference = np.stack(
            [
                np.asarray(
                    channel.apply(members[e], np.random.default_rng(11 + e)), dtype=float
                )
                for e in range(3)
            ]
        )
        np.testing.assert_array_equal(fused, reference)

    @pytest.mark.parametrize("channel", CHANNELS, ids=_member_ids)
    def test_apply_many_zero_tensor_is_identity(self, channel):
        fused = channel.apply_many(
            np.zeros((4, 3)), [np.random.default_rng(s) for s in range(3)]
        )
        np.testing.assert_array_equal(fused, np.zeros((3, 4, 3)))

    def test_third_party_channel_falls_back_to_loop(self, rng):
        """Channels without apply_stacked compose via the per-member loop."""

        class JitterChannel:
            def apply(self, weights, rng):
                return weights + rng.normal(scale=1e-3, size=weights.shape)

            def describe(self):
                return "jitter"

        stack = NoiseStack([QuantizationChannel(bits=8), JitterChannel()])
        weights = rng.normal(size=(5, 4))
        fused = stack.apply_many(weights, [np.random.default_rng(s) for s in range(4)])
        reference = np.stack(
            [stack.apply(weights, np.random.default_rng(s)) for s in range(4)]
        )
        np.testing.assert_array_equal(fused, reference)

    def test_apply_many_requires_generators(self):
        with pytest.raises(ValueError):
            QuantizationChannel(bits=8).apply_many(np.ones((2, 2)), [])


class TestQuantizeArrayStack:
    @settings(max_examples=15, deadline=None)
    @given(
        data_seed=st.integers(min_value=0, max_value=2**16),
        bits=st.sampled_from([1, 2, 6, 16]),
        n_members=st.integers(min_value=1, max_value=5),
    )
    def test_matches_per_member_quantize_array(self, data_seed, bits, n_members):
        values = np.random.default_rng(data_seed).normal(size=(n_members, 4, 6))
        values[0] *= 10.0  # distinct per-member dynamic ranges
        fused = quantize_array_stack(values, bits)
        reference = np.stack([quantize_array(values[e], bits) for e in range(n_members)])
        np.testing.assert_array_equal(fused, reference)

    def test_strided_input_and_zero_members(self, rng):
        values = np.transpose(rng.normal(size=(3, 5, 4)))  # non-contiguous
        fused = quantize_array_stack(values, 8)
        reference = np.stack([quantize_array(values[e], 8) for e in range(4)])
        np.testing.assert_array_equal(fused, reference)
        zeros = np.zeros((2, 3, 3))
        np.testing.assert_array_equal(quantize_array_stack(zeros, 8), zeros)

    def test_preserves_float32(self, rng):
        values = rng.normal(size=(2, 8)).astype(np.float32)
        assert quantize_array_stack(values, 8).dtype == np.float32


# ---------------------------------------------------------------------- #
# Engine-level identity
# ---------------------------------------------------------------------- #
def _sequential_logits(model, inputs, stack, seeds, activation_bits, batch_size=64):
    return np.stack(
        [
            PhotonicInferenceEngine.from_stack(
                stack, activation_bits=activation_bits, seed=seed
            ).predict(model, inputs, batch_size=batch_size)
            for seed in seeds
        ]
    )


@pytest.fixture(scope="module")
def fpv_stack():
    return NoiseStack([QuantizationChannel(bits=8), FPVDriftChannel()])


class TestEnsembleEngineIdentity:
    def test_logits_match_per_seed_engines(self, trained_compact_lenet, fpv_stack):
        model, test_x, _ = trained_compact_lenet
        seeds = list(range(5))
        engine = EnsembleInferenceEngine(fpv_stack, seeds, activation_bits=8)
        fused = engine.predict(model, test_x)
        reference = _sequential_logits(model, test_x, fpv_stack, seeds, 8)
        np.testing.assert_array_equal(fused, reference)

    def test_monte_carlo_matches_per_seed_loop(self, trained_compact_lenet, fpv_stack):
        model, test_x, test_y = trained_compact_lenet
        result = monte_carlo_accuracy(
            model, test_x, test_y, fpv_stack, seeds=6, activation_bits=8
        )
        for seed, record in zip(result.seeds, result.records):
            engine = PhotonicInferenceEngine.from_stack(
                fpv_stack, activation_bits=8, seed=seed
            )
            reference = engine.evaluate(model, test_x, test_y)
            assert record.accuracy == reference.accuracy
            assert record.noise == reference.noise

    def test_drift_sweep_matches_per_point_engines(self, trained_compact_lenet):
        from repro.sim import accuracy_vs_residual_drift

        model, test_x, test_y = trained_compact_lenet
        drifts = (0.0, 0.1, 0.5, 1.5)
        records = accuracy_vs_residual_drift(
            model, test_x, test_y, drifts, resolution_bits=8, seed=3
        )
        for drift, record in zip(drifts, records):
            engine = PhotonicInferenceEngine.from_stack(
                default_noise_stack(8, drift), activation_bits=8, seed=3
            )
            reference = engine.evaluate(model, test_x, test_y)
            assert record.accuracy == reference.accuracy
            assert record.residual_drift_nm == reference.residual_drift_nm

    def test_heterogeneous_activation_bits_match_sequential(self, trained_compact_lenet):
        """The fig5 shape: one member per resolution, per-member activations."""
        model, test_x, test_y = trained_compact_lenet
        bits_sweep = (2, 4, 8, 16)
        records = evaluate_ensemble(
            model,
            test_x,
            test_y,
            [NoiseStack([QuantizationChannel(bits=b)]) for b in bits_sweep],
            seeds=[0] * len(bits_sweep),
            activation_bits=list(bits_sweep),
        )
        for bits, record in zip(bits_sweep, records):
            engine = PhotonicInferenceEngine.from_stack(
                NoiseStack([QuantizationChannel(bits=bits)]), activation_bits=bits, seed=0
            )
            assert record.accuracy == engine.evaluate(model, test_x, test_y).accuracy
            assert record.resolution_bits == bits

    def test_covers_all_layer_kinds(self, rng):
        """BatchNorm/pool/dropout/flatten layers run identically in ensembles."""
        model = Sequential(
            [
                Conv2D(1, 3, kernel_size=3, rng=rng),
                BatchNorm(3),
                ReLU(),
                AvgPool2D(pool_size=2),
                Flatten(),
                Dropout(rate=0.3),
                Dense(3 * 5 * 5, 7, rng=rng),
            ],
            input_shape=(1, 12, 12),
            name="mixed",
        )
        inputs = rng.normal(size=(9, 1, 12, 12))
        model.train()
        model.forward(inputs)  # populate BatchNorm running statistics
        stack = default_noise_stack(resolution_bits=6, residual_drift_nm=0.4)
        seeds = [3, 5, 8]
        engine = EnsembleInferenceEngine(stack, seeds, activation_bits=6)
        fused = engine.predict(model, inputs, batch_size=4)
        reference = _sequential_logits(model, inputs, stack, seeds, 6, batch_size=4)
        np.testing.assert_array_equal(fused, reference)


class TestChunkingAndDtype:
    @pytest.mark.parametrize("member_chunk", [1, 2, 4])
    def test_member_chunking_is_exact(
        self, trained_compact_lenet, fpv_stack, member_chunk
    ):
        model, test_x, _ = trained_compact_lenet
        seeds = list(range(5))
        unchunked = EnsembleInferenceEngine(fpv_stack, seeds, activation_bits=8)
        chunked = EnsembleInferenceEngine(
            fpv_stack, seeds, activation_bits=8, member_chunk=member_chunk
        )
        np.testing.assert_array_equal(
            chunked.predict(model, test_x), unchunked.predict(model, test_x)
        )

    def test_batch_chunking_is_exact(self, trained_compact_lenet, fpv_stack):
        """Splitting the batch axis must not change any member's logits.

        (The *activation quantization ranges* are per forward batch, so the
        comparison fixes batch_size and only varies member chunking; here we
        check that the engine's own batching loop stitches batches exactly.)
        """
        model, test_x, _ = trained_compact_lenet
        engine = EnsembleInferenceEngine(fpv_stack, [0, 1, 2], activation_bits=8)
        reference = _sequential_logits(
            model, test_x, fpv_stack, [0, 1, 2], 8, batch_size=17
        )
        np.testing.assert_array_equal(
            engine.predict(model, test_x, batch_size=17), reference
        )

    def test_float32_mode_is_close(self, trained_compact_lenet, fpv_stack):
        model, test_x, test_y = trained_compact_lenet
        exact = monte_carlo_accuracy(
            model, test_x, test_y, fpv_stack, seeds=4, activation_bits=None
        )
        lean = monte_carlo_accuracy(
            model, test_x, test_y, fpv_stack, seeds=4, activation_bits=None,
            dtype=np.float32,
        )
        np.testing.assert_allclose(lean.accuracies, exact.accuracies, atol=0.05)
        engine = EnsembleInferenceEngine(
            fpv_stack, [0, 1], activation_bits=None, dtype=np.float32
        )
        logits = engine.predict(model, test_x)
        assert logits.dtype == np.float32
        reference = EnsembleInferenceEngine(
            fpv_stack, [0, 1], activation_bits=None
        ).predict(model, test_x)
        np.testing.assert_allclose(logits, reference, rtol=1e-3, atol=1e-3)

    def test_array_fingerprint_has_no_cheap_collisions(self):
        """Regression: sum/ramp statistics aliased distinct label vectors."""
        from repro.sim.photonic_inference import _array_fingerprint

        first = np.array([1, 0, 1])
        second = np.array([0, 2, 0])  # same shape, sum, |sum|, and ramp-dot
        assert _array_fingerprint(first) != _array_fingerprint(second)

    def test_default_member_chunk_bounds_residency(self, fpv_stack):
        from repro.sim.photonic_inference import DEFAULT_MEMBER_CHUNK

        engine = EnsembleInferenceEngine(fpv_stack, seeds=3 * DEFAULT_MEMBER_CHUNK)
        chunks = engine._member_chunks()
        assert max(len(chunk) for chunk in chunks) == DEFAULT_MEMBER_CHUNK
        assert [i for chunk in chunks for i in chunk] == list(range(engine.n_members))

    def test_float32_bias_does_not_upcast(self, rng):
        """Biased layer ensembles stay in float32 (the mode's memory story)."""
        dense = Dense(6, 4, rng=rng)
        out = dense.forward_ensemble(
            rng.normal(size=(3, 6)).astype(np.float32),
            rng.normal(size=(2, 6, 4)).astype(np.float32),
        )
        assert out.dtype == np.float32
        conv = Conv2D(1, 2, kernel_size=3, rng=rng)
        out = conv.forward_ensemble(
            rng.normal(size=(3, 1, 8, 8)).astype(np.float32),
            rng.normal(size=(2, 2, 1, 3, 3)).astype(np.float32),
        )
        assert out.dtype == np.float32

    def test_monte_carlo_rejects_invalid_n_workers(self, trained_compact_lenet, fpv_stack):
        model, test_x, test_y = trained_compact_lenet
        with pytest.raises(ValueError):
            monte_carlo_accuracy(
                model, test_x, test_y, fpv_stack, seeds=2, n_workers=-4
            )
        with pytest.raises(TypeError):
            monte_carlo_accuracy(
                model, test_x, test_y, fpv_stack, seeds=2, n_workers=2.5
            )

    def test_parallel_seed_chunks_match_serial(self, trained_compact_lenet, fpv_stack):
        model, test_x, test_y = trained_compact_lenet
        serial = monte_carlo_accuracy(
            model, test_x, test_y, fpv_stack, seeds=5, activation_bits=8
        )
        parallel = monte_carlo_accuracy(
            model, test_x, test_y, fpv_stack, seeds=5, activation_bits=8, n_workers=2
        )
        assert serial.accuracies == parallel.accuracies


class TestEngineValidation:
    def test_stack_and_seed_counts_must_match(self, fpv_stack):
        with pytest.raises(ValueError):
            EnsembleInferenceEngine([fpv_stack, fpv_stack], seeds=[1, 2, 3])

    def test_mixed_stacks_and_channels_rejected(self, fpv_stack):
        with pytest.raises(TypeError):
            EnsembleInferenceEngine([fpv_stack, QuantizationChannel(8)], seeds=2)

    def test_channel_iterable_builds_shared_stack(self, trained_compact_lenet):
        model, test_x, _ = trained_compact_lenet
        engine = EnsembleInferenceEngine(
            [QuantizationChannel(bits=8)], seeds=2, activation_bits=8
        )
        assert engine.n_members == 2
        assert engine.noise_stacks[0] is engine.noise_stacks[1]

    def test_rejects_bad_dtype_and_empty_seeds(self, fpv_stack):
        with pytest.raises(ValueError):
            EnsembleInferenceEngine(fpv_stack, seeds=[])
        with pytest.raises(ValueError):
            EnsembleInferenceEngine(fpv_stack, seeds=2, dtype=np.int32)

    def test_layer_ensemble_shape_validation(self, rng):
        dense = Dense(4, 3, rng=rng)
        with pytest.raises(ValueError):
            dense.forward_ensemble(rng.normal(size=(2, 4)), rng.normal(size=(5, 3, 3)))
        conv = Conv2D(2, 3, kernel_size=3, rng=rng)
        with pytest.raises(ValueError):
            conv.forward_ensemble(
                rng.normal(size=(1, 2, 8, 8)), rng.normal(size=(4, 3, 9))
            )


# ---------------------------------------------------------------------- #
# Sweep-layer additions
# ---------------------------------------------------------------------- #
class TestPlanChunks:
    def test_n_chunks_balanced_cover(self):
        chunks = plan_chunks(10, n_chunks=3)
        assert [list(chunk) for chunk in chunks] == [[0, 1, 2, 3], [4, 5, 6], [7, 8, 9]]

    def test_chunk_size_cover(self):
        chunks = plan_chunks(7, chunk_size=3)
        assert [list(chunk) for chunk in chunks] == [[0, 1, 2], [3, 4, 5], [6]]

    def test_degenerate_and_invalid(self):
        assert plan_chunks(0, n_chunks=4) == []
        assert [list(c) for c in plan_chunks(2, n_chunks=8)] == [[0], [1]]
        with pytest.raises(ValueError):
            plan_chunks(4, n_chunks=2, chunk_size=2)
        with pytest.raises(ValueError):
            plan_chunks(4)
        with pytest.raises(ValueError):
            plan_chunks(4, chunk_size=0)


def _square(x):
    return x * x


class TestSweepExecutor:
    def test_reused_across_sweeps_and_matches_serial(self):
        points = [{"x": value} for value in range(9)]
        serial = run_sweep(_square, points)
        with SweepExecutor(n_workers=2) as executor:
            first = run_sweep(_square, points, executor=executor)
            second = run_sweep(_square, points, executor=executor)
        assert first.values == serial.values
        assert second.values == serial.values

    def test_single_point_runs_inline(self):
        executor = SweepExecutor(n_workers=2)
        result = run_sweep(_square, [{"x": 3}], executor=executor)
        assert result.values == (9,)
        assert executor._pool is None  # never had to spin up workers
        executor.shutdown()

    def test_validation(self):
        with pytest.raises(ValueError):
            SweepExecutor(n_workers=0)
        with pytest.raises(TypeError):
            SweepExecutor(n_workers=True)
