"""Tests for the experiment registry, typed configs, and the repro CLI.

Covers the API-redesign contract:

* the registry names all 13 experiments and resolves legacy module names;
* legacy ``run()``/``main()`` shims are equivalent to the registry path
  (same text, byte for byte) for every experiment, at reduced scale where
  a full run would train models for minutes;
* ``StudyReport`` round-trips through dict/JSON losslessly;
* config dataclasses validate on construction (hypothesis-driven);
* ``import repro.experiments`` is lazy and stays within its time budget;
* ``benchmarks/compare.py`` reads the StudyReport JSON envelope.
"""

from __future__ import annotations

import dataclasses
import importlib.util
import json
import os
import subprocess
import sys
from dataclasses import dataclass, field
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments import (
    ablation,
    device_dse,
    fig4_thermal,
    fig5_resolution_accuracy,
    fig6_design_space,
    fig7_power,
    resolution_analysis,
    serving_study,
    table1_models,
    table2_devices,
)
from repro.study import (
    StudyConfig,
    StudyReport,
    StudyRunner,
    all_experiments,
    experiment_names,
    get_experiment,
    run_experiment,
)
from repro.study.cli import main as cli_main

ALL_NAMES = (
    "table1_models",
    "table2_devices",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "table3_summary",
    "device_dse",
    "resolution_analysis",
    "ablation",
    "serving_study",
    "serving_faults",
)

#: Pre-redesign output of ``table2_devices.main()``, pinned verbatim: the
#: device constants are static, so this must never change.
TABLE2_GOLDEN = """\
Table II reproduction - optoelectronic device parameters
Device         Latency        Power  Paper latency  Paper power
-------------  -------  -----------  -------------  -----------
EO Tuning        20 ns      4 uW/nm          20 ns      4 uW/nm
TO Tuning         4 us  27.5 mW/FSR           4 us  27.5 mW/FSR
VCSEL            10 ns      0.66 mW          10 ns      0.66 mW
TIA            0.15 ns       7.2 mW        0.15 ns       7.2 mW
Photodetector   5.8 ps       2.8 mW         5.8 ps       2.8 mW"""


@dataclass(frozen=True)
class DemoConfig(StudyConfig):
    """Exercises every supported config field kind."""

    flag: bool = False
    count: int = field(default=3, metadata={"min": 1, "max": 10})
    ratio: float = 0.5
    label: str = "x"
    sizes: tuple[int, ...] = field(
        default=(1, 2), metadata={"min": 1, "nonempty": True}
    )
    note: str | None = None


class TestRegistry:
    def test_names_all_thirteen(self):
        assert experiment_names() == ALL_NAMES

    def test_all_experiments_registered(self):
        experiments = all_experiments()
        assert [exp.name for exp in experiments] == list(ALL_NAMES)
        for exp in experiments:
            assert exp.artefact and exp.title and exp.description
            assert issubclass(exp.config_cls, StudyConfig)

    def test_module_name_aliases_resolve(self):
        assert get_experiment("fig4_thermal").name == "fig4"
        assert get_experiment("fig5_resolution_accuracy").name == "fig5"
        assert get_experiment("fig6_design_space").name == "fig6"
        assert get_experiment("fig7_power").name == "fig7"
        assert get_experiment("fig8_epb").name == "fig8"

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            get_experiment("nope")


class TestEquivalenceCheap:
    """Legacy main() == registry to_text(), full scale, cheap experiments."""

    @pytest.mark.parametrize(
        "name, module",
        [
            ("table1_models", table1_models),
            ("table2_devices", table2_devices),
            ("fig4", fig4_thermal),
            ("fig7", fig7_power),
            ("device_dse", device_dse),
            ("resolution_analysis", resolution_analysis),
        ],
    )
    def test_main_matches_registry(self, name, module):
        assert module.main() == run_experiment(name).to_text()

    def test_table2_pinned_against_pre_redesign_output(self):
        assert table2_devices.main() == TABLE2_GOLDEN
        assert run_experiment("table2_devices").to_text() == TABLE2_GOLDEN

    def test_legacy_positional_shims(self):
        # device_dse.main(max_rows) and fig6-style bool/int positionals.
        assert device_dse.main(3) == run_experiment("device_dse", max_rows=3).to_text()
        assert (
            resolution_analysis.main(include_accuracy=False)
            == run_experiment("resolution_analysis").to_text()
        )


class TestEquivalenceReduced:
    """Legacy main(argv) == registry path at reduced scale, heavy drivers."""

    def test_fig5(self):
        argv = [
            "--model-indices", "1",
            "--bits-sweep", "1", "16",
            "--epochs", "2",
            "--n-train", "60",
            "--n-test", "40",
        ]
        report = run_experiment(
            "fig5",
            model_indices=(1,),
            bits_sweep=(1, 16),
            epochs=2,
            n_train=60,
            n_test=40,
        )
        assert fig5_resolution_accuracy.main(argv) == report.to_text()
        assert "Fig. 5 reproduction" in report.to_text()

    def test_fig6(self):
        flat = (20, 150, 100, 60, 10, 100, 50, 30)
        argv = ["--geometries", *map(str, flat), "--max-rows", "2"]
        report = run_experiment("fig6", geometries=flat, max_rows=2)
        assert fig6_design_space.main(argv) == report.to_text()
        # Legacy int-positional shim still renders (full sweep is memoized
        # via build_all_models? no -- keep to the reduced sweep here).
        assert report.to_text().startswith("Fig. 6 reproduction")

    def test_serving_study(self):
        report = run_experiment("serving_study", n_requests=150)
        assert serving_study.main(["--requests", "150"]) == report.to_text()
        assert "(fleet=1, ~150 requests/run, seed=0)" in report.to_text()

    def test_serving_study_precomputed_result_render(self):
        report = run_experiment("serving_study", n_requests=150)
        text = serving_study.main(["--requests", "150"], result=report.result)
        assert text == report.to_text()

    def test_ablation_without_accuracy(self):
        argv = ["--no-include-drift-accuracy"]
        report = run_experiment("ablation", include_drift_accuracy=False)
        assert ablation.main(argv) == report.to_text()
        assert "Ablation 4" not in report.to_text()
        # Legacy bool-positional shim maps to include_fpv_monte_carlo.
        assert ablation.main(False) == run_experiment("ablation").to_text()


class TestStudyReport:
    @pytest.fixture(scope="class")
    def report(self):
        return run_experiment("table2_devices", seed=7)

    def test_dict_round_trip(self, report):
        clone = StudyReport.from_dict(report.to_dict())
        assert clone.to_dict() == report.to_dict()
        assert clone.to_text() == report.to_text()
        assert clone.result is None  # typed result is not serialised

    def test_json_round_trip(self, report):
        clone = StudyReport.from_json(report.to_json())
        assert clone == StudyReport.from_dict(report.to_dict())

    def test_envelope_contents(self, report):
        envelope = report.envelope
        assert envelope["seed"] == 7
        assert envelope["n_workers"] is None
        assert envelope["wall_time_s"] >= 0.0
        assert isinstance(envelope["cache"], dict)
        assert envelope["cache_hits"] >= 0 and envelope["cache_misses"] >= 0
        from repro import __version__

        assert envelope["version"] == __version__

    def test_records_are_jsonable(self, report):
        payload = json.dumps(report.records)
        rows = json.loads(payload)
        assert rows[0]["kind"] == "DeviceRow"
        assert rows[0]["device"] == "EO Tuning"

    def test_bad_schema_rejected(self, report):
        data = report.to_dict()
        data["schema"] = 999
        with pytest.raises(ValueError, match="schema"):
            StudyReport.from_dict(data)

    def test_missing_keys_rejected(self, report):
        data = report.to_dict()
        del data["records"]
        with pytest.raises(ValueError, match="missing"):
            StudyReport.from_dict(data)

    def test_cache_accounting_attributes_hits_to_the_run(self):
        # fig4 memoizes crosstalk matrices / TED eigendecompositions; a
        # second identical run must see cache hits in its own envelope.
        run_experiment("fig4")
        again = run_experiment("fig4")
        assert again.envelope["cache_hits"] > 0


class TestStudyRunner:
    def test_run_all_subset_in_order(self):
        with StudyRunner() as runner:
            reports = runner.run_all(["table2_devices", "table1_models"])
        assert [r.experiment for r in reports] == ["table2_devices", "table1_models"]

    def test_config_object_and_overrides_conflict(self):
        exp = get_experiment("fig4")
        config = exp.config_cls()
        with StudyRunner() as runner:
            with pytest.raises(TypeError, match="not both"):
                runner.run("fig4", config, n_rings=5)

    def test_wrong_config_type_rejected(self):
        config = get_experiment("fig4").config_cls()
        with StudyRunner() as runner:
            with pytest.raises(TypeError, match="expects"):
                runner.run("table2_devices", config)

    def test_serial_runner_creates_no_executor(self):
        with StudyRunner(n_workers=1) as runner:
            assert runner.executor is None

    def test_parallel_runner_reuses_one_executor(self):
        with StudyRunner(n_workers=2) as runner:
            first = runner.executor
            assert first is runner.executor
            report = runner.run("fig6", geometries=(20, 150, 100, 60, 10, 100, 50, 30))
            assert report.envelope["n_workers"] == 2
        assert runner._executor is None  # closed on exit

    def test_parallel_matches_serial(self):
        flat = (20, 150, 100, 60, 10, 100, 50, 30)
        serial = run_experiment("fig6", geometries=flat)
        parallel = run_experiment("fig6", n_workers=2, geometries=flat)
        assert serial.to_text() == parallel.to_text()
        assert serial.records == parallel.records

    def test_invalid_runner_args(self):
        with pytest.raises(TypeError):
            StudyRunner(seed="zero")
        with pytest.raises(ValueError):
            StudyRunner(n_workers=-1)


class TestConfigValidation:
    def test_defaults_construct(self):
        config = DemoConfig()
        assert config.count == 3 and config.sizes == (1, 2)

    def test_list_coerced_to_tuple(self):
        assert DemoConfig(sizes=[3, 4]).sizes == (3, 4)

    def test_from_dict_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown config keys"):
            DemoConfig.from_dict({"cuont": 5})

    def test_bool_not_accepted_as_int(self):
        with pytest.raises(ValueError, match="count"):
            DemoConfig(count=True)

    def test_optional_accepts_none(self):
        assert DemoConfig(note=None).note is None
        assert DemoConfig(note="hi").note == "hi"

    def test_int_accepted_as_float(self):
        config = DemoConfig(ratio=1)
        assert config.ratio == 1.0 and isinstance(config.ratio, float)

    @given(count=st.integers(min_value=1, max_value=10))
    @settings(max_examples=25, deadline=None)
    def test_cli_round_trip_int(self, count):
        config = DemoConfig.from_cli_args(["--count", str(count)])
        assert config.count == count
        assert DemoConfig.from_dict(config.to_dict()) == config

    @given(sizes=st.lists(st.integers(min_value=1, max_value=99), min_size=1, max_size=6))
    @settings(max_examples=25, deadline=None)
    def test_cli_round_trip_tuple(self, sizes):
        argv = ["--sizes", *map(str, sizes)]
        config = DemoConfig.from_cli_args(argv)
        assert config.sizes == tuple(sizes)
        assert DemoConfig.from_dict(config.to_dict()) == config

    @given(count=st.integers().filter(lambda n: n < 1 or n > 10))
    @settings(max_examples=25, deadline=None)
    def test_out_of_range_int_rejected(self, count):
        with pytest.raises(ValueError, match="count"):
            DemoConfig(count=count)

    @given(
        value=st.one_of(st.text(), st.floats(), st.booleans(), st.binary())
    )
    @settings(max_examples=25, deadline=None)
    def test_non_int_count_rejected(self, value):
        with pytest.raises(ValueError):
            DemoConfig(count=value)

    @given(flag=st.booleans())
    @settings(max_examples=10, deadline=None)
    def test_bool_optional_action_flags(self, flag):
        argv = ["--flag"] if flag else ["--no-flag"]
        assert DemoConfig.from_cli_args(argv).flag is flag

    def test_sizes_element_range_enforced(self):
        with pytest.raises(ValueError, match="sizes"):
            DemoConfig(sizes=(1, 0))

    def test_nonempty_tuple_enforced(self):
        with pytest.raises(ValueError, match="must not be empty"):
            DemoConfig(sizes=())
        with pytest.raises(ValueError, match="must not be empty"):
            fig5_resolution_accuracy.Fig5Config(model_indices=())

    def test_fig6_geometry_quadruple_check(self):
        with pytest.raises(ValueError, match="quadruples"):
            fig6_design_space.Fig6Config(geometries=(1, 2, 3))

    def test_unsupported_annotation_rejected(self):
        @dataclass(frozen=True)
        class Bad(StudyConfig):
            mapping: dict = dataclasses.field(default_factory=dict)

        with pytest.raises(TypeError, match="unsupported annotation"):
            Bad()


class TestCli:
    def test_list_names_all_experiments(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ALL_NAMES:
            assert name in out

    def test_describe_shows_flags(self, capsys):
        assert cli_main(["describe", "fig5"]) == 0
        out = capsys.readouterr().out
        assert "--epochs" in out and "--bits-sweep" in out and "Fig. 5" in out

    def test_describe_no_flags_experiment(self, capsys):
        assert cli_main(["describe", "table2_devices"]) == 0
        assert "no config flags" in capsys.readouterr().out

    def test_run_text(self, capsys):
        assert cli_main(["run", "table2_devices"]) == 0
        assert capsys.readouterr().out.strip() == TABLE2_GOLDEN

    def test_run_json_round_trips(self, capsys):
        assert cli_main(["run", "table2_devices", "--json"]) == 0
        report = StudyReport.from_json(capsys.readouterr().out)
        assert report.experiment == "table2_devices"
        assert report.to_text() == TABLE2_GOLDEN

    def test_run_with_config_flags(self, capsys):
        assert cli_main(["run", "fig4", "--n-rings", "4", "--json"]) == 0
        report = StudyReport.from_json(capsys.readouterr().out)
        assert report.config["n_rings"] == 4

    def test_run_out_file(self, tmp_path, capsys):
        out = tmp_path / "fig4.json"
        assert cli_main(["run", "fig4", "--json", "--out", str(out)]) == 0
        capsys.readouterr()
        assert StudyReport.from_json(out.read_text()).experiment == "fig4"

    def test_unknown_experiment_exit_code(self, capsys):
        assert cli_main(["run", "nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_name_and_all_conflict(self, capsys):
        with pytest.raises(SystemExit):
            cli_main(["run", "fig4", "--all"])

    def test_run_requires_name_or_all(self, capsys):
        with pytest.raises(SystemExit):
            cli_main(["run"])

    def test_invalid_config_flag_value(self, capsys):
        assert cli_main(["run", "fig4", "--n-rings", "1"]) == 2
        assert "n_rings" in capsys.readouterr().err

    def test_python_m_repro_entry(self):
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "run", "table2_devices"],
            capture_output=True, text=True, env=env, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == TABLE2_GOLDEN


class TestLazyExperimentsImport:
    def test_import_is_lazy_and_within_budget(self):
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        code = (
            "import sys, time\n"
            "import repro\n"
            "t0 = time.perf_counter()\n"
            "import repro.experiments\n"
            "elapsed = time.perf_counter() - t0\n"
            "heavy = [m for m in sys.modules if m.startswith('repro.experiments.')]\n"
            "assert not heavy, f'eagerly imported: {heavy}'\n"
            "mod = repro.experiments.fig4_thermal\n"
            "assert 'repro.experiments.fig4_thermal' in sys.modules\n"
            "assert sorted(set(dir(repro.experiments)) & {'ablation', 'fig8_epb'}) == ['ablation', 'fig8_epb']\n"
            "print(elapsed)\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, env=env, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        # The lazy package __init__ imports nothing heavy: give it a full
        # second of budget to stay robust on slow CI machines (the eager
        # version cost several seconds of driver imports).
        assert float(proc.stdout.strip()) < 1.0

    def test_unknown_attribute_raises(self):
        import repro.experiments

        with pytest.raises(AttributeError):
            repro.experiments.not_a_driver


class TestCompareEnvelope:
    @pytest.fixture(scope="class")
    def compare(self):
        path = Path(__file__).resolve().parents[1] / "benchmarks" / "compare.py"
        spec = importlib.util.spec_from_file_location("bench_compare", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_reads_single_report_envelope(self, compare, tmp_path):
        report = run_experiment("table2_devices")
        path = tmp_path / "report.json"
        path.write_text(report.to_json())
        means = compare.load_means(path)
        assert list(means) == ["study:table2_devices"]
        assert means["study:table2_devices"] == pytest.approx(
            report.envelope["wall_time_s"]
        )

    def test_reads_manifest_with_embedded_reports(self, compare, tmp_path):
        reports = [run_experiment("table2_devices"), run_experiment("fig4")]
        payload = {
            "schema": 1,
            "kind": "manifest",
            "reports": [r.to_dict() for r in reports],
        }
        path = tmp_path / "manifest.json"
        path.write_text(json.dumps(payload))
        means = compare.load_means(path)
        assert set(means) == {"study:table2_devices", "study:fig4"}

    def test_reads_on_disk_manifest_summaries(self, compare, tmp_path):
        payload = {
            "schema": 1,
            "kind": "manifest",
            "reports": {"fig4": {"file": "fig4.json", "wall_time_s": 0.25}},
        }
        path = tmp_path / "manifest.json"
        path.write_text(json.dumps(payload))
        assert compare.load_means(path) == {"study:fig4": 0.25}

    def test_study_floor_comparison_flags_regression(self, compare, tmp_path):
        base = {"study:fig4": 1.0, "study:x": 1.0, "study:y": 1.0}
        cur = {"study:fig4": 2.0, "study:x": 1.0, "study:y": 1.0}
        regressions, factor = compare.compare(cur, base, 1.2)
        assert factor == 1.0
        assert [name for name, *_ in regressions] == ["study:fig4"]

    def test_pytest_benchmark_payload_still_reads(self, compare, tmp_path):
        payload = {"benchmarks": [{"fullname": "t::b", "stats": {"mean": 0.5}}]}
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(payload))
        assert compare.load_means(path) == {"t::b": 0.5}
