"""Unit tests for the tuning circuits: TO, EO, TED, and the hybrid policy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.devices import CONVENTIONAL_MR, EO_TUNING, OPTIMIZED_MR, TO_TUNING
from repro.tuning import (
    ConventionalTOTuningPolicy,
    ElectroOpticTuner,
    HybridTuningPolicy,
    ThermalEigenmodeDecomposition,
    ThermoOpticTuner,
    tuning_power_vs_pitch,
)
from repro.variations import ThermalCrosstalkModel


class TestThermoOpticTuner:
    def test_full_fsr_shift_costs_quoted_power(self):
        tuner = ThermoOpticTuner(fsr_nm=18.0)
        assert tuner.power_for_shift_w(18.0) == pytest.approx(27.5e-3)

    def test_power_linear_in_shift(self):
        tuner = ThermoOpticTuner(fsr_nm=18.0)
        assert tuner.power_for_shift_w(9.0) == pytest.approx(27.5e-3 / 2)

    def test_shift_beyond_range_rejected(self):
        tuner = ThermoOpticTuner(fsr_nm=18.0)
        with pytest.raises(ValueError):
            tuner.power_for_shift_w(20.0)

    def test_energy_includes_hold_time(self):
        tuner = ThermoOpticTuner(fsr_nm=18.0)
        short = tuner.energy_for_shift_j(2.0, hold_time_s=1e-6)
        long = tuner.energy_for_shift_j(2.0, hold_time_s=1e-3)
        assert long > short

    def test_table2_latency(self):
        assert ThermoOpticTuner().latency_s == pytest.approx(4e-6)


class TestElectroOpticTuner:
    def test_power_per_nm_matches_table2(self):
        tuner = ElectroOpticTuner()
        assert tuner.power_for_shift_w(1.0) == pytest.approx(4e-6)

    def test_small_shift_cheap_compared_to_to(self):
        eo = ElectroOpticTuner()
        to = ThermoOpticTuner(fsr_nm=18.0)
        assert eo.power_for_shift_w(0.5) < to.power_for_shift_w(0.5) / 100

    def test_eo_range_limited(self):
        tuner = ElectroOpticTuner(max_shift_nm=1.5)
        assert tuner.can_compensate(1.0)
        assert not tuner.can_compensate(3.0)
        with pytest.raises(ValueError):
            tuner.power_for_shift_w(3.0)

    def test_vectorised_power(self):
        tuner = ElectroOpticTuner()
        shifts = np.array([0.1, 0.5, 1.0])
        np.testing.assert_allclose(tuner.power_for_shifts_w(shifts), 4e-6 * shifts)

    def test_table2_latency(self):
        assert ElectroOpticTuner().latency_s == pytest.approx(20e-9)


class TestTED:
    def test_ted_cheaper_than_naive_at_tight_pitch(self):
        ted = ThermalEigenmodeDecomposition()
        result = ted.solve(np.full(10, np.pi / 2), pitch_um=5.0)
        assert result.ted_total_power_w < result.naive_total_power_w
        assert result.power_saving_ratio > 2.0

    def test_ted_and_naive_converge_at_large_pitch(self):
        ted = ThermalEigenmodeDecomposition()
        result = ted.solve(np.full(10, np.pi / 2), pitch_um=500.0)
        assert result.ted_total_power_w == pytest.approx(
            result.naive_total_power_w, rel=0.05
        )

    def test_ted_powers_are_non_negative(self):
        ted = ThermalEigenmodeDecomposition()
        rng = np.random.default_rng(0)
        phases = np.clip(rng.normal(1.0, 0.4, size=12), 0.0, None)
        result = ted.solve(phases, pitch_um=3.0)
        assert np.all(result.ted_powers_w >= 0)

    def test_eigenmodes_of_crosstalk_matrix(self):
        ted = ThermalEigenmodeDecomposition()
        eigenvalues, eigenvectors = ted.eigenmodes(8, 5.0)
        assert np.all(eigenvalues > 0)  # positive definite
        # Orthonormal eigenbasis.
        np.testing.assert_allclose(eigenvectors.T @ eigenvectors, np.eye(8), atol=1e-9)

    def test_solve_rejects_negative_phases(self):
        ted = ThermalEigenmodeDecomposition()
        with pytest.raises(ValueError):
            ted.solve(np.array([0.5, -0.1]), pitch_um=5.0)

    def test_fig4_sweep_minimum_at_5um(self):
        pitches = np.array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 10.0, 20.0, 50.0])
        sweep = tuning_power_vs_pitch(pitches)
        minimum = pitches[int(np.argmin(sweep["ted_power_per_mr_w"]))]
        assert minimum == pytest.approx(5.0)

    def test_fig4_sweep_naive_always_at_least_ted(self):
        pitches = np.linspace(2.0, 60.0, 15)
        sweep = tuning_power_vs_pitch(pitches)
        assert np.all(sweep["naive_power_per_mr_w"] >= sweep["ted_power_per_mr_w"] - 1e-12)

    def test_uniform_bank_power_scales_with_drift_phase(self):
        ted = ThermalEigenmodeDecomposition()
        small = ted.uniform_bank_power_w(15, 5.0, 0.3, use_ted=True)
        large = ted.uniform_bank_power_w(15, 5.0, 0.9, use_ted=True)
        assert large > small


class TestHybridPolicy:
    def test_mechanism_selection(self):
        policy = HybridTuningPolicy()
        assert policy.mechanism_for_shift(0.5) == "EO"
        assert policy.mechanism_for_shift(5.0) == "TO"
        with pytest.raises(ValueError):
            policy.mechanism_for_shift(50.0)

    def test_default_pitch_follows_ted_choice(self):
        assert HybridTuningPolicy(use_ted=True).mr_pitch_um == pytest.approx(5.0)
        assert HybridTuningPolicy(use_ted=False).mr_pitch_um == pytest.approx(120.0)

    def test_optimized_design_needs_less_boot_power(self):
        optimized = HybridTuningPolicy(mr_design=OPTIMIZED_MR)
        conventional = HybridTuningPolicy(mr_design=CONVENTIONAL_MR)
        assert optimized.boot_compensation_power_w(15) < conventional.boot_compensation_power_w(15)

    def test_hybrid_plan_faster_and_cheaper_than_conventional(self):
        hybrid = HybridTuningPolicy(mr_design=OPTIMIZED_MR, use_ted=True).plan_bank(15)
        conventional = ConventionalTOTuningPolicy(mr_design=OPTIMIZED_MR).plan_bank(15)
        assert hybrid.update_latency_s < conventional.update_latency_s
        assert hybrid.dynamic_eo_power_w < conventional.dynamic_eo_power_w
        assert hybrid.update_latency_s == pytest.approx(EO_TUNING.latency_s)
        assert conventional.update_latency_s == pytest.approx(TO_TUNING.latency_s)

    def test_plan_total_power_is_sum_of_parts(self):
        plan = HybridTuningPolicy().plan_bank(10)
        assert plan.total_power_w == pytest.approx(
            plan.static_to_power_w + plan.dynamic_eo_power_w
        )

    def test_ted_reduces_boot_power_at_5um(self):
        crosstalk = ThermalCrosstalkModel()
        with_ted = HybridTuningPolicy(use_ted=True, mr_pitch_um=5.0, crosstalk=crosstalk)
        without = HybridTuningPolicy(use_ted=False, mr_pitch_um=5.0, crosstalk=crosstalk)
        assert with_ted.boot_compensation_power_w(15) < without.boot_compensation_power_w(15)
