"""Unit tests for repro.utils (unit conversions and validation helpers)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils import (
    check_finite,
    check_in_range,
    check_non_negative,
    check_positive,
    check_positive_int,
    check_probability,
    db_to_linear,
    dbm_to_mw,
    dbm_to_watt,
    frequency_to_wavelength_um,
    linear_to_db,
    mw_to_dbm,
    watt_to_dbm,
    wavelength_to_frequency_thz,
)


class TestUnitConversions:
    def test_db_to_linear_known_values(self):
        assert db_to_linear(0.0) == pytest.approx(1.0)
        assert db_to_linear(10.0) == pytest.approx(10.0)
        assert db_to_linear(-3.0) == pytest.approx(0.501187, rel=1e-5)

    def test_linear_to_db_roundtrip(self):
        for value in (0.01, 0.5, 1.0, 2.0, 1234.5):
            assert db_to_linear(linear_to_db(value)) == pytest.approx(value)

    def test_linear_to_db_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            linear_to_db(0.0)
        with pytest.raises(ValueError):
            linear_to_db(-1.0)

    def test_dbm_mw_roundtrip(self):
        for power_mw in (0.001, 1.0, 27.5, 300.0):
            assert dbm_to_mw(mw_to_dbm(power_mw)) == pytest.approx(power_mw)

    def test_dbm_to_watt_scaling(self):
        assert dbm_to_watt(0.0) == pytest.approx(1e-3)
        assert dbm_to_watt(30.0) == pytest.approx(1.0)

    def test_watt_to_dbm_known(self):
        assert watt_to_dbm(1e-3) == pytest.approx(0.0)
        assert watt_to_dbm(1.0) == pytest.approx(30.0)

    def test_watt_to_dbm_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            watt_to_dbm(0.0)

    def test_wavelength_frequency_roundtrip(self):
        freq = wavelength_to_frequency_thz(1550.0)
        assert freq == pytest.approx(193.41, rel=1e-3)
        wavelength_um = frequency_to_wavelength_um(freq)
        assert wavelength_um == pytest.approx(1.55, rel=1e-9)

    def test_array_inputs_supported(self):
        values = np.array([1.0, 10.0, 100.0])
        np.testing.assert_allclose(linear_to_db(values), [0.0, 10.0, 20.0])

    def test_wavelength_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            wavelength_to_frequency_thz(0.0)
        with pytest.raises(ValueError):
            frequency_to_wavelength_um(-1.0)


class TestValidation:
    def test_check_positive_accepts_and_rejects(self):
        assert check_positive("x", 2.5) == 2.5
        with pytest.raises(ValueError):
            check_positive("x", 0.0)
        with pytest.raises(ValueError):
            check_positive("x", -1.0)

    def test_check_non_negative(self):
        assert check_non_negative("x", 0.0) == 0.0
        with pytest.raises(ValueError):
            check_non_negative("x", -0.1)

    def test_check_positive_int_rejects_floats_and_bools(self):
        assert check_positive_int("n", 3) == 3
        with pytest.raises(TypeError):
            check_positive_int("n", 3.0)
        with pytest.raises(ValueError):
            check_positive_int("n", 0)

    def test_check_finite_rejects_nan_and_inf(self):
        with pytest.raises(ValueError):
            check_finite("x", float("nan"))
        with pytest.raises(ValueError):
            check_finite("x", float("inf"))
        with pytest.raises(TypeError):
            check_finite("x", "not a number")

    def test_check_in_range_boundaries(self):
        assert check_in_range("x", 0.0, 0.0, 1.0) == 0.0
        assert check_in_range("x", 1.0, 0.0, 1.0) == 1.0
        with pytest.raises(ValueError):
            check_in_range("x", 1.01, 0.0, 1.0)

    def test_check_probability(self):
        assert check_probability("p", 0.5) == 0.5
        with pytest.raises(ValueError):
            check_probability("p", -0.01)
        with pytest.raises(ValueError):
            check_probability("p", 1.5)

    def test_error_messages_name_the_parameter(self):
        with pytest.raises(ValueError, match="my_param"):
            check_positive("my_param", -2)
