"""Property tests: the array-first MR device APIs match the scalar path.

The photonic-inference hot path now evaluates the MR Lorentzian over whole
weight tensors in one call; these hypothesis-driven tests pin the refactor's
contract -- the vectorized results equal the element-by-element scalar
results exactly (same formula, same branch structure), for any weights and
drifts in the physical range.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.devices import MicroringResonator
from repro.devices.mr_bank import MRBank
from repro.sim.photonic_inference import PhotonicInferenceEngine

weight_arrays = hnp.arrays(
    dtype=np.float64,
    shape=hnp.array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=6),
    elements=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)
drifts = st.floats(min_value=0.0, max_value=7.1, allow_nan=False)


class TestVectorizedEqualsScalar:
    @settings(max_examples=60, deadline=None)
    @given(weights=weight_arrays)
    def test_detuning_for_transmission_elementwise(self, weights):
        mr = MicroringResonator.optimized()
        vectorized = mr.detuning_for_transmission(weights)
        scalar = np.array(
            [mr.detuning_for_transmission(float(w)) for w in weights.reshape(-1)]
        ).reshape(weights.shape)
        np.testing.assert_array_equal(vectorized, scalar)

    @settings(max_examples=60, deadline=None)
    @given(weights=weight_arrays, drift=drifts)
    def test_transmission_error_from_drift_elementwise(self, weights, drift):
        mr = MicroringResonator.optimized()
        vectorized = mr.transmission_error_from_drift(weights, drift)
        scalar = np.array(
            [
                mr.transmission_error_from_drift(float(w), drift)
                for w in weights.reshape(-1)
            ]
        ).reshape(weights.shape)
        np.testing.assert_array_equal(vectorized, scalar)

    @settings(max_examples=30, deadline=None)
    @given(
        target=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        drift=drifts,
    )
    def test_scalar_inputs_return_python_floats(self, target, drift):
        mr = MicroringResonator.conventional()
        assert isinstance(mr.detuning_for_transmission(target), float)
        assert isinstance(mr.transmission_error_from_drift(target, drift), float)

    @settings(max_examples=30, deadline=None)
    @given(target=st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    def test_drift_broadcasts_over_target(self, target):
        mr = MicroringResonator.optimized()
        drift_array = np.array([0.0, 0.1, 1.0])
        broadcast = mr.transmission_error_from_drift(target, drift_array)
        assert broadcast.shape == drift_array.shape
        for i, drift in enumerate(drift_array):
            assert broadcast[i] == mr.transmission_error_from_drift(target, float(drift))


class TestVectorizedValidation:
    def test_out_of_range_array_rejected(self):
        mr = MicroringResonator.optimized()
        with pytest.raises(ValueError):
            mr.detuning_for_transmission(np.array([0.5, 1.5]))
        with pytest.raises(ValueError):
            mr.transmission_error_from_drift(np.array([-0.1, 0.5]), 0.1)

    def test_non_finite_rejected(self):
        mr = MicroringResonator.optimized()
        with pytest.raises(ValueError):
            mr.detuning_for_transmission(np.array([0.5, np.nan]))

    def test_full_transmission_parks_at_half_fsr(self):
        mr = MicroringResonator.optimized()
        detunings = mr.detuning_for_transmission(np.array([0.0, 0.5, 1.0]))
        assert detunings[0] == 0.0
        assert detunings[-1] == pytest.approx(mr.fsr_nm / 2.0)


class TestBankVectorization:
    @settings(max_examples=25, deadline=None)
    @given(
        weights=hnp.arrays(
            dtype=np.float64,
            shape=st.integers(min_value=1, max_value=15),
            elements=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        ),
        drift=drifts,
    )
    def test_bank_weight_error_matches_per_ring_loop(self, weights, drift):
        bank = MRBank(n_mrs=15)
        vectorized = bank.weight_error_from_drift(weights, drift)
        scalar = np.array(
            [
                bank.rings[i % bank.n_mrs].transmission_error_from_drift(float(w), drift)
                for i, w in enumerate(weights)
            ]
        )
        np.testing.assert_array_equal(vectorized, scalar)

    def test_bank_with_mutated_ring_extinction_uses_per_ring_path(self):
        bank = MRBank(n_mrs=3)
        bank.rings[1].extinction_ratio_db = 5.0
        weights = np.array([0.02, 0.02, 0.02])
        errors = bank.weight_error_from_drift(weights, 0.5)
        expected = np.array(
            [
                bank.rings[i].transmission_error_from_drift(float(w), 0.5)
                for i, w in enumerate(weights)
            ]
        )
        np.testing.assert_array_equal(errors, expected)
        assert errors[1] != errors[0]  # the mutated ring responds differently

    def test_bank_with_individually_detuned_ring_uses_per_ring_path(self):
        bank = MRBank(n_mrs=4)
        bank.rings[2].apply_resonance_shift(0.5)
        weights = np.array([0.2, 0.4, 0.6, 0.8])
        errors = bank.weight_error_from_drift(weights, 0.3)
        expected = np.array(
            [
                bank.rings[i].transmission_error_from_drift(float(w), 0.3)
                for i, w in enumerate(weights)
            ]
        )
        np.testing.assert_array_equal(errors, expected)

    def test_imprint_weights_matches_template_inversion(self):
        bank = MRBank(n_mrs=8)
        weights = np.linspace(0.0, 1.0, 8)
        detunings = bank.imprint_weights(weights)
        expected = np.array(
            [bank.rings[0].detuning_for_transmission(float(w)) for w in weights]
        )
        np.testing.assert_array_equal(detunings, expected)


class TestEngineEquivalence:
    @settings(max_examples=15, deadline=None)
    @given(
        weights=hnp.arrays(
            dtype=np.float64,
            shape=hnp.array_shapes(min_dims=2, max_dims=2, min_side=2, max_side=8),
            elements=st.floats(min_value=-2.0, max_value=2.0, allow_nan=False),
        ),
        drift=st.floats(min_value=0.01, max_value=2.1, allow_nan=False),
    )
    def test_perturbed_weights_matches_seed_per_element_loop(self, weights, drift):
        from repro.nn.quantization import quantize_array

        vec_engine = PhotonicInferenceEngine(
            resolution_bits=8, residual_drift_nm=drift, seed=7
        )
        ref_engine = PhotonicInferenceEngine(
            resolution_bits=8, residual_drift_nm=drift, seed=7
        )
        vectorized = vec_engine.perturbed_weights(weights)

        # The seed implementation, element by element.
        quantized = quantize_array(weights, ref_engine.resolution_bits)
        max_abs = float(np.max(np.abs(quantized)))
        if max_abs == 0.0:
            np.testing.assert_array_equal(vectorized, quantized)
            return
        normalised = np.abs(quantized) / max_abs
        errors = np.array(
            [
                ref_engine.mr.transmission_error_from_drift(
                    float(v), ref_engine.residual_drift_nm
                )
                for v in normalised.reshape(-1)
            ]
        ).reshape(normalised.shape)
        signs = ref_engine._rng.choice([-1.0, 1.0], size=errors.shape)
        expected = quantized + signs * errors * max_abs
        np.testing.assert_array_equal(vectorized, expected)
