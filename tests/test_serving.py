"""Tests of the discrete-event serving runtime (:mod:`repro.serve`).

Covers the determinism, batching, and conservation invariants the
subsystem guarantees:

* same seed -> byte-identical event traces (hypothesis);
* the micro-batcher never forms a batch above ``max_batch_size`` and never
  holds a due head while capacity is idle (deadline bound);
* conservation: every arrival is completed, shed, queued, or in flight --
  exactly once -- in both drained and cut-off runs;
* the serving-study sweeps produce identical records serially and through
  a process pool;
* the batching frontier is monotone: larger max-batch raises achieved
  service throughput and p99 latency, and lowers energy per request.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.accelerator import CrossLightAccelerator, PhotonicAccelerator
from repro.experiments import serving_study
from repro.nn.layers import LayerWorkload
from repro.nn.zoo import build_model
from repro.serve import (
    BatchPolicy,
    BurstyTraffic,
    DiurnalTraffic,
    EventQueue,
    MicroBatcher,
    PoissonTraffic,
    Request,
    ServingRuntime,
    SimulationClock,
    TraceTraffic,
    requests_from_traffic,
    serve_trace,
)
from repro.sim.simulator import simulate_models
from repro.sim.tracer import trace_model


@pytest.fixture(scope="module")
def lenet():
    return build_model(1)


@pytest.fixture(scope="module")
def crosslight():
    return CrossLightAccelerator.from_variant("cross_opt_ted")


@pytest.fixture(scope="module")
def lenet_workloads(lenet):
    return trace_model(lenet)


# --------------------------------------------------------------------------- #
# Event queue and clock
# --------------------------------------------------------------------------- #
class TestEventCore:
    def test_pop_orders_by_time_then_priority_then_seq(self):
        queue = EventQueue()
        queue.push(2.0, 0, "late")
        queue.push(1.0, 2, "arrival")
        queue.push(1.0, 0, "completion")
        queue.push(1.0, 2, "arrival-2")
        order = [queue.pop()[3] for _ in range(len(queue))]
        assert order == ["completion", "arrival", "arrival-2", "late"]

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, 0, "x")

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_clock_never_goes_backwards(self):
        clock = SimulationClock()
        clock.advance_to(5.0)
        with pytest.raises(ValueError):
            clock.advance_to(4.0)
        assert clock.now_s == 5.0


# --------------------------------------------------------------------------- #
# Traffic generators
# --------------------------------------------------------------------------- #
class TestTraffic:
    @pytest.mark.parametrize(
        "traffic",
        [
            PoissonTraffic(rate_rps=5_000.0, duration_s=0.2),
            BurstyTraffic(
                base_rate_rps=2_000.0,
                burst_rate_rps=20_000.0,
                duration_s=0.2,
                mean_base_dwell_s=0.02,
                mean_burst_dwell_s=0.005,
            ),
            DiurnalTraffic(
                mean_rate_rps=5_000.0, duration_s=0.2, period_s=0.1, amplitude=0.8
            ),
        ],
        ids=["poisson", "bursty", "diurnal"],
    )
    def test_seeded_sorted_and_in_window(self, traffic):
        times = traffic.generate(seed=7)
        assert np.array_equal(times, traffic.generate(seed=7))
        assert not np.array_equal(times, traffic.generate(seed=8))
        assert times.size > 50
        assert np.all(np.diff(times) >= 0)
        assert times[0] >= 0 and times[-1] < traffic.duration_s

    def test_poisson_rate_is_roughly_honoured(self):
        traffic = PoissonTraffic(rate_rps=10_000.0, duration_s=0.5)
        times = traffic.generate(seed=0)
        assert times.size == pytest.approx(5_000, rel=0.1)

    def test_diurnal_modulates_rate_across_half_periods(self):
        traffic = DiurnalTraffic(
            mean_rate_rps=20_000.0, duration_s=0.1, period_s=0.1, amplitude=0.9
        )
        times = traffic.generate(seed=0)
        first_half = np.sum(times < 0.05)
        second_half = times.size - first_half
        # sin > 0 over the first half period: the day side must dominate.
        assert first_half > 2 * second_half

    def test_trace_replay_is_exact_and_seed_free(self):
        trace = TraceTraffic([0.0, 0.5, 0.5, 1.0])
        assert np.array_equal(trace.generate(0), trace.generate(99))
        assert trace.duration_s > 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PoissonTraffic(rate_rps=0.0, duration_s=1.0)
        with pytest.raises(ValueError):
            BurstyTraffic(5.0, 1.0, 1.0, 0.1, 0.1)  # burst < base
        with pytest.raises(ValueError):
            DiurnalTraffic(1.0, 1.0, 1.0, amplitude=1.5)
        with pytest.raises(ValueError):
            TraceTraffic([1.0, 0.5])
        with pytest.raises(ValueError):
            TraceTraffic([])


# --------------------------------------------------------------------------- #
# Micro-batcher
# --------------------------------------------------------------------------- #
def _request(i, t, model="m"):
    return Request(request_id=i, model=model, arrival_s=t)


class TestMicroBatcher:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            BatchPolicy(max_batch_size=0)
        with pytest.raises(ValueError):
            BatchPolicy(max_wait_s=0.0)
        with pytest.raises(ValueError):
            BatchPolicy(max_queue_depth=0)

    def test_full_batch_dispatches_without_deadline(self):
        batcher = MicroBatcher("m", BatchPolicy(max_batch_size=2, max_wait_s=1.0))
        batcher.offer(_request(0, 0.0), 0.0)
        assert not batcher.dispatchable(0.0)
        batcher.offer(_request(1, 0.1), 0.1)
        assert batcher.has_full_batch() and batcher.dispatchable(0.1)
        batch, deadline_triggered = batcher.pop_batch(0.1)
        assert [r.request_id for r in batch] == [0, 1]
        assert not deadline_triggered

    def test_deadline_releases_partial_batch(self):
        batcher = MicroBatcher("m", BatchPolicy(max_batch_size=8, max_wait_s=0.5))
        batcher.offer(_request(0, 0.0), 0.0)
        assert not batcher.dispatchable(0.49)
        assert batcher.dispatchable(0.5)
        batch, deadline_triggered = batcher.pop_batch(0.5)
        assert len(batch) == 1 and deadline_triggered

    def test_premature_pop_raises(self):
        batcher = MicroBatcher("m", BatchPolicy(max_batch_size=8, max_wait_s=0.5))
        batcher.offer(_request(0, 0.0), 0.0)
        with pytest.raises(RuntimeError):
            batcher.pop_batch(0.1)
        with pytest.raises(IndexError):
            MicroBatcher("m", BatchPolicy()).pop_batch(0.0)

    def test_backpressure_sheds_beyond_depth(self):
        batcher = MicroBatcher(
            "m", BatchPolicy(max_batch_size=4, max_wait_s=1.0, max_queue_depth=2)
        )
        assert batcher.offer(_request(0, 0.0), 0.0)
        assert batcher.offer(_request(1, 0.0), 0.0)
        assert not batcher.offer(_request(2, 0.0), 0.0)
        assert batcher.n_shed == 1 and batcher.depth == 2

    def test_wrong_model_rejected(self):
        batcher = MicroBatcher("m", BatchPolicy())
        with pytest.raises(ValueError):
            batcher.offer(_request(0, 0.0, model="other"), 0.0)

    @given(
        arrivals=st.lists(
            st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
            min_size=1,
            max_size=60,
        ),
        max_batch=st.integers(min_value=1, max_value=7),
        depth=st.one_of(st.none(), st.integers(min_value=1, max_value=10)),
    )
    @settings(max_examples=60, deadline=None)
    def test_batcher_invariants_under_random_arrivals(self, arrivals, max_batch, depth):
        """Batches never exceed max size, keep FIFO order, and conserve."""
        policy = BatchPolicy(max_batch_size=max_batch, max_wait_s=0.25, max_queue_depth=depth)
        batcher = MicroBatcher("m", policy)
        popped: list[int] = []
        now = 0.0
        for index, time in enumerate(sorted(arrivals)):
            now = time
            batcher.offer(_request(index, time), now)
            while batcher.dispatchable(now):
                batch, _ = batcher.pop_batch(now)
                assert 1 <= len(batch) <= max_batch
                popped.extend(r.request_id for r in batch)
        # Drain whatever deadline-bound tail remains.
        while len(batcher):
            now = batcher.head_deadline_s
            batch, _ = batcher.pop_batch(now)
            assert len(batch) <= max_batch
            popped.extend(r.request_id for r in batch)
        assert popped == sorted(popped)  # FIFO
        assert len(popped) + batcher.n_shed == len(arrivals)
        if depth is not None:
            assert batcher.peak_depth <= depth


# --------------------------------------------------------------------------- #
# Batch latency model (arch integration)
# --------------------------------------------------------------------------- #
class TestBatchLatency:
    def test_scaled_workload(self):
        workload = LayerWorkload(kind="conv", dot_product_length=9, n_dot_products=4)
        scaled = workload.scaled(3)
        assert scaled.n_dot_products == 12 and scaled.dot_product_length == 9
        assert workload.scaled(1) is workload
        with pytest.raises(ValueError):
            workload.scaled(0)

    def test_batch_of_one_matches_single_inference(self, crosslight, lenet_workloads):
        assert crosslight.batch_latency_s(lenet_workloads, 1) == pytest.approx(
            crosslight.latency_for_workloads(lenet_workloads)
        )

    def test_batch_latency_monotone_and_amortizing(self, crosslight, lenet_workloads):
        sizes = (1, 2, 4, 8, 16, 32)
        latencies = [crosslight.batch_latency_s(lenet_workloads, b) for b in sizes]
        per_request = [t / b for t, b in zip(latencies, sizes)]
        assert all(b > a for a, b in zip(latencies, latencies[1:]))
        assert all(b < a for a, b in zip(per_request, per_request[1:]))

    def test_default_accelerator_has_no_amortization(self, lenet_workloads):
        class Fixed(PhotonicAccelerator):
            conv_vector_size = 16
            n_conv_units = 4
            fc_vector_size = 16
            n_fc_units = 4

            def cycle_time_s(self):
                return 1e-9

        fixed = Fixed()
        assert fixed.weight_update_time_s() == 0.0
        single = fixed.batch_latency_s(lenet_workloads, 1)
        # Without a weight-update share the only gain is unit-array packing.
        assert fixed.batch_latency_s(lenet_workloads, 4) <= 4 * single
        assert fixed.batch_latency_s(lenet_workloads, 4) >= 3.9 * single

    def test_invalid_batch_size(self, crosslight, lenet_workloads):
        with pytest.raises(ValueError):
            crosslight.batch_latency_s(lenet_workloads, 0)

    def test_simulate_models_accepts_single_model(self, crosslight, lenet):
        single = simulate_models(crosslight, lenet)
        wrapped = simulate_models(crosslight, [lenet])
        assert single.accelerator == wrapped.accelerator
        assert single.avg_fps == wrapped.avg_fps
        assert len(single.reports) == 1


# --------------------------------------------------------------------------- #
# End-to-end serving runs
# --------------------------------------------------------------------------- #
def _run(lenet, crosslight, *, rate=40_000.0, duration=0.01, max_batch=4,
         max_wait=200e-6, n_workers=1, seed=0, drain=True, depth=None):
    return serve_trace(
        lenet,
        crosslight,
        PoissonTraffic(rate_rps=rate, duration_s=duration),
        BatchPolicy(max_batch_size=max_batch, max_wait_s=max_wait, max_queue_depth=depth),
        n_workers=n_workers,
        seed=seed,
        drain=drain,
    )


class TestServeTrace:
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        max_batch=st.sampled_from([1, 2, 4, 8]),
        rate=st.sampled_from([20_000.0, 60_000.0, 150_000.0]),
        n_workers=st.sampled_from([1, 2]),
    )
    @settings(max_examples=15, deadline=None)
    def test_same_seed_gives_identical_event_traces(self, seed, max_batch, rate, n_workers):
        lenet = build_model(1)
        crosslight = CrossLightAccelerator.from_variant("cross_opt_ted")
        reports = [
            _run(lenet, crosslight, rate=rate, duration=0.003,
                 max_batch=max_batch, n_workers=n_workers, seed=seed)
            for _ in range(2)
        ]
        assert reports[0].event_trace == reports[1].event_trace
        assert reports[0] == reports[1]

    def test_different_seeds_differ(self, lenet, crosslight):
        a = _run(lenet, crosslight, seed=0)
        b = _run(lenet, crosslight, seed=1)
        assert a.event_trace != b.event_trace

    @given(
        seed=st.integers(min_value=0, max_value=1_000),
        depth=st.one_of(st.none(), st.sampled_from([8, 32])),
        drain=st.booleans(),
        rate=st.sampled_from([50_000.0, 300_000.0, 700_000.0]),
    )
    @settings(max_examples=15, deadline=None)
    def test_conservation_across_load_regimes(self, seed, depth, drain, rate):
        lenet = build_model(1)
        crosslight = CrossLightAccelerator.from_variant("cross_opt_ted")
        report = _run(lenet, crosslight, rate=rate, duration=0.003,
                      max_batch=8, seed=seed, drain=drain, depth=depth)
        assert report.conserved
        assert report.n_arrivals == (
            report.n_completed + report.n_shed
            + report.n_queued_end + report.n_in_flight_end
        )
        if drain and depth is None:
            assert report.backlog_end == 0 and report.n_shed == 0

    def test_batches_respect_max_size_and_deadline(self, lenet, crosslight):
        max_wait = 150e-6
        report = _run(lenet, crosslight, rate=30_000.0, duration=0.02,
                      max_batch=4, max_wait=max_wait, n_workers=4)
        assert report.batches
        assert max(batch.size for batch in report.batches) <= 4
        # With an ample fleet a due head is always dispatched on time.
        waits = [record.queue_wait_s for record in report.requests]
        assert max(waits) <= max_wait * (1 + 1e-12)

    def test_full_batches_do_not_wait_for_deadline(self, lenet, crosslight):
        report = _run(lenet, crosslight, rate=500_000.0, duration=0.002,
                      max_batch=8, max_wait=1.0, n_workers=1)
        full = [batch for batch in report.batches if batch.size == 8]
        assert full and not any(batch.deadline_triggered for batch in full)

    def test_shedding_under_overload(self, lenet, crosslight):
        report = _run(lenet, crosslight, rate=800_000.0, duration=0.005,
                      max_batch=8, depth=32)
        assert report.n_shed > 0
        assert 0.0 < report.shed_rate < 1.0
        assert report.peak_queue_depth <= 32
        assert report.conserved

    def test_saturation_backlog_diverges_with_horizon(self, lenet, crosslight):
        stable_short = _run(lenet, crosslight, rate=150_000.0, duration=0.005,
                            max_batch=1, drain=False)
        stable_long = _run(lenet, crosslight, rate=150_000.0, duration=0.01,
                           max_batch=1, drain=False)
        overload_short = _run(lenet, crosslight, rate=400_000.0, duration=0.005,
                              max_batch=1, drain=False)
        overload_long = _run(lenet, crosslight, rate=400_000.0, duration=0.01,
                             max_batch=1, drain=False)
        # Below capacity (204k rps at B=1) the backlog stays a few requests.
        assert stable_short.backlog_end < 0.01 * stable_short.n_arrivals
        assert stable_long.backlog_end < 0.01 * stable_long.n_arrivals
        # Above it the backlog scales with the horizon (linear divergence).
        assert overload_short.backlog_end > 0.2 * overload_short.n_arrivals
        assert overload_long.backlog_end > 1.5 * overload_short.backlog_end

    def test_fleet_scales_throughput(self, lenet, crosslight):
        # 2.5M rps saturates both fleets (capacity is ~480k rps per worker),
        # so delivered throughput is capacity-limited and must scale.
        single = _run(lenet, crosslight, rate=2_500_000.0, duration=0.003,
                      max_batch=8, n_workers=1, depth=64)
        fleet = _run(lenet, crosslight, rate=2_500_000.0, duration=0.003,
                     max_batch=8, n_workers=4, depth=64)
        assert fleet.throughput_rps > 3.5 * single.throughput_rps
        assert fleet.shed_rate < single.shed_rate

    def test_report_metrics_are_consistent(self, lenet, crosslight):
        report = _run(lenet, crosslight, rate=60_000.0, duration=0.01, max_batch=4)
        assert report.n_completed == len(report.requests)
        assert report.n_completed == sum(batch.size for batch in report.batches)
        assert report.p50_latency_s <= report.p95_latency_s <= report.p99_latency_s
        assert 0.0 < report.utilisation <= 1.0
        assert report.total_energy_j == pytest.approx(
            report.power_w * sum(report.worker_busy_s)
        )
        assert report.mean_batch_size == pytest.approx(
            report.n_completed / len(report.batches)
        )
        assert "lenet5" in report.summary()

    def test_stale_deadline_does_not_stretch_the_horizon(self, lenet, crosslight):
        # Both requests fill the batch immediately; the head's armed 1 s
        # deadline then fires as a stale no-op and must not extend the
        # measurement window past the last completion (~6.6 us).
        report = serve_trace(
            lenet,
            crosslight,
            TraceTraffic([0.0, 1e-9]),
            BatchPolicy(max_batch_size=2, max_wait_s=1.0),
            seed=0,
        )
        assert report.n_completed == 2
        assert report.horizon_s < 1e-4
        assert report.throughput_rps > 100_000

    def test_cutoff_utilisation_stays_bounded(self, lenet, crosslight):
        # At 10x capacity with drain=False the final in-flight batch must
        # not leak busy time beyond the horizon.
        report = _run(lenet, crosslight, rate=5_000_000.0, duration=0.002,
                      max_batch=8, drain=False, depth=64)
        assert report.n_in_flight_end > 0
        assert report.utilisation <= 1.0
        assert report.total_energy_j == pytest.approx(
            report.power_w * sum(report.worker_busy_s)
        )

    def test_runtime_instance_runs_once(self, lenet, crosslight, lenet_workloads):
        runtime = ServingRuntime(
            {"lenet5": lenet_workloads}, crosslight, BatchPolicy()
        )
        traffic = PoissonTraffic(rate_rps=50_000.0, duration_s=0.001)
        requests = requests_from_traffic(traffic, "lenet5", seed=0)
        runtime.run(requests, traffic.duration_s)
        with pytest.raises(RuntimeError):
            runtime.run(requests, traffic.duration_s)


class TestMultiModel:
    def test_per_model_queues_never_mix_batches(self, crosslight):
        models = {1: build_model(1), 2: build_model(2)}
        workloads = {m.name: trace_model(m) for m in models.values()}
        runtime = ServingRuntime(
            workloads,
            crosslight,
            BatchPolicy(max_batch_size=4, max_wait_s=100e-6),
            n_workers=2,
        )
        requests = sorted(
            requests_from_traffic(
                PoissonTraffic(rate_rps=40_000.0, duration_s=0.005),
                models[1].name, seed=0,
            )
            + requests_from_traffic(
                PoissonTraffic(rate_rps=40_000.0, duration_s=0.005),
                models[2].name, seed=1, start_id=10_000,
            ),
            key=lambda request: request.arrival_s,
        )
        report = runtime.run(requests, 0.005)
        assert report.conserved
        assert set(report.models) == {models[1].name, models[2].name}
        served = {batch.model for batch in report.batches}
        assert served == set(report.models)
        for batch in report.batches:
            assert {request.model for request in batch.requests} == {batch.model}


class TestFunctionalServing:
    def test_outputs_match_noiseless_model(self, crosslight):
        model = build_model(1, compact=True)
        rng = np.random.default_rng(0)
        inputs = rng.normal(size=(24, 1, 16, 16))
        expected = np.argmax(model.predict(inputs), axis=1)
        report = serve_trace(
            model,
            crosslight,
            PoissonTraffic(rate_rps=30_000.0, duration_s=0.002),
            BatchPolicy(max_batch_size=4, max_wait_s=100e-6),
            n_workers=2,
            seed=0,
            inputs=inputs,
        )
        assert report.outputs is not None
        assert set(report.outputs) == {r.request_id for r in report.requests}
        for record in report.requests:
            assert report.outputs[record.request_id] == expected[
                record.request_id % inputs.shape[0]
            ]

    def test_functional_serving_is_seed_reproducible(self, crosslight):
        from repro.sim.noise import NoiseStack, QuantizationChannel, ResidualDriftChannel

        model = build_model(1, compact=True)
        inputs = np.random.default_rng(1).normal(size=(16, 1, 16, 16))
        stack = NoiseStack([QuantizationChannel(bits=6), ResidualDriftChannel(0.3)])
        runs = [
            serve_trace(
                model,
                crosslight,
                PoissonTraffic(rate_rps=30_000.0, duration_s=0.002),
                BatchPolicy(max_batch_size=4, max_wait_s=100e-6),
                n_workers=2,
                seed=5,
                inputs=inputs,
                noise_stack=stack,
                activation_bits=6,
            )
            for _ in range(2)
        ]
        assert runs[0].outputs == runs[1].outputs
        assert runs[0].event_trace == runs[1].event_trace


# --------------------------------------------------------------------------- #
# Serving study
# --------------------------------------------------------------------------- #
class TestServingStudy:
    @pytest.fixture(scope="class")
    def crosslight_sweep(self):
        return serving_study.batch_size_sweep(
            accelerators=("Cross_opt_TED",),
            max_batches=(1, 2, 4, 8),
            n_requests=500,
        )

    def test_batch_sweep_monotone_frontier(self, crosslight_sweep):
        points = sorted(crosslight_sweep, key=lambda p: p.max_batch)
        p99s = [p.p99_latency_s for p in points]
        capacity = [p.service_throughput_rps for p in points]
        energy = [p.energy_per_request_j for p in points]
        assert all(b > a for a, b in zip(p99s, p99s[1:]))
        assert all(b > a for a, b in zip(capacity, capacity[1:]))
        assert all(b < a for a, b in zip(energy, energy[1:]))

    def test_sweep_parallel_parity(self, crosslight_sweep):
        parallel = serving_study.batch_size_sweep(
            accelerators=("Cross_opt_TED",),
            max_batches=(1, 2, 4, 8),
            n_requests=500,
            n_workers=2,
        )
        assert parallel == crosslight_sweep

    def test_crosslight_dominates_on_energy_at_equal_load(self):
        points, rate = serving_study.equal_load_comparison(n_requests=400)
        by_name = {point.accelerator: point for point in points}
        crosslight = by_name["Cross_opt_TED"]
        assert crosslight.energy_per_request_j < by_name["DEAP_CNN"].energy_per_request_j
        assert crosslight.energy_per_request_j < by_name["Holylight"].energy_per_request_j
        for point in points:
            assert point.rate_rps == rate and point.stable

    def test_saturation_finds_the_capacity_edge(self):
        results = serving_study.saturation_sweep(
            accelerators=("Cross_opt_TED", "DEAP_CNN"), n_requests=600
        )
        for result in results:
            rates = [point.rate_rps for point in result.points]
            stabilities = [point.stable for point in result.points]
            # Stability is monotone: stable below the edge, saturated above.
            assert stabilities == sorted(stabilities, reverse=True)
            assert 0.0 < result.max_sustainable_rps < max(rates)
            assert result.max_sustainable_rps <= result.capacity_rps
        by_name = {result.accelerator: result for result in results}
        assert (
            by_name["Cross_opt_TED"].max_sustainable_rps
            > 10 * by_name["DEAP_CNN"].max_sustainable_rps
        )

    def test_saturation_sweep_is_deterministic(self):
        twice = [
            serving_study.saturation_sweep(
                accelerators=("Cross_opt_TED",), n_requests=300
            )
            for _ in range(2)
        ]
        assert twice[0] == twice[1]

    def test_capacity_matches_batch_latency_model(self, crosslight, lenet_workloads):
        capacity = serving_study.fleet_capacity_rps("Cross_opt_TED", 8, fleet_size=2)
        expected = 2 * 8 / crosslight.batch_latency_s(lenet_workloads, 8)
        assert capacity == pytest.approx(expected)

    def test_unknown_accelerator_rejected(self):
        with pytest.raises(ValueError):
            serving_study.build_accelerator("TPU")
