"""Property-based tests (hypothesis) on core invariants of the library."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.arch import VDPUnit, dot_product_partial_sums, plan_layer
from repro.crosstalk import analyze_bank_resolution
from repro.devices import MicroringResonator, SplitterTree, required_laser_power_dbm
from repro.nn import UniformQuantizer, quantize_array
from repro.nn import functional as F
from repro.tuning import ThermalEigenmodeDecomposition
from repro.utils import db_to_linear, linear_to_db

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestUnitConversionProperties:
    @given(st.floats(min_value=1e-9, max_value=1e9, allow_nan=False))
    def test_db_linear_roundtrip(self, ratio):
        assert db_to_linear(linear_to_db(ratio)) == pytest.approx(ratio, rel=1e-9)

    @given(st.floats(min_value=-100.0, max_value=100.0))
    def test_db_to_linear_always_positive(self, value_db):
        assert db_to_linear(value_db) > 0


class TestMRProperties:
    @given(st.floats(min_value=1400.0, max_value=1700.0))
    def test_transmission_always_in_unit_interval(self, wavelength_nm):
        mr = MicroringResonator.optimized()
        transmission = mr.through_transmission(wavelength_nm)
        assert 0.0 <= transmission <= 1.0

    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_detuning_inverts_transmission(self, target):
        mr = MicroringResonator.optimized()
        detuning = mr.detuning_for_transmission(target)
        assert 0.0 <= detuning <= mr.fsr_nm / 2.0
        if mr.min_transmission < target < 0.999:
            realised = mr.through_transmission(mr.resonance_nm + detuning)
            assert realised == pytest.approx(max(target, mr.min_transmission), abs=1e-6)


class TestLaserPowerProperties:
    @given(
        st.floats(min_value=0.0, max_value=60.0),
        st.integers(min_value=1, max_value=64),
    )
    def test_laser_power_monotone_in_loss_and_channels(self, loss_db, n_wavelengths):
        base = required_laser_power_dbm(loss_db, n_wavelengths)
        more_loss = required_laser_power_dbm(loss_db + 1.0, n_wavelengths)
        more_channels = required_laser_power_dbm(loss_db, n_wavelengths + 1)
        assert more_loss > base
        assert more_channels > base

    @given(st.integers(min_value=1, max_value=1024))
    def test_splitter_loss_at_least_ideal_division(self, fanout):
        tree = SplitterTree(fanout=fanout)
        assert tree.insertion_loss_db >= 10 * math.log10(fanout) - 1e-9


class TestQuantizationProperties:
    @given(
        hnp.arrays(
            dtype=float,
            shape=st.integers(min_value=1, max_value=64),
            elements=st.floats(min_value=-10, max_value=10, allow_nan=False),
        ),
        st.integers(min_value=1, max_value=16),
    )
    def test_quantization_idempotent_and_bounded(self, values, bits):
        quantized = quantize_array(values, bits)
        again = quantize_array(quantized, bits)
        np.testing.assert_allclose(quantized, again, atol=1e-12)
        assert np.max(np.abs(quantized)) <= np.max(np.abs(values)) + 1e-12

    @given(
        hnp.arrays(
            dtype=float,
            shape=25,
            elements=st.floats(min_value=-1, max_value=1, allow_nan=False),
        )
    )
    def test_error_never_exceeds_half_step(self, values):
        quantizer = UniformQuantizer(bits=6)
        error = np.abs(quantizer.quantize(values) - values)
        assert np.all(error <= quantizer.step / 2 + 1e-12)

    @given(st.integers(min_value=2, max_value=15))
    def test_more_bits_never_increase_rms_error(self, bits):
        rng = np.random.default_rng(0)
        values = rng.uniform(-1, 1, 200)
        coarse = UniformQuantizer(bits=bits).quantization_error(values)
        fine = UniformQuantizer(bits=bits + 1).quantization_error(values)
        assert fine <= coarse + 1e-12


class TestDecompositionProperties:
    @given(
        st.integers(min_value=1, max_value=400),
        st.integers(min_value=1, max_value=50),
        st.integers(min_value=42, max_value=52),
    )
    def test_partial_sums_always_reassemble(self, length, chunk, seed):
        rng = np.random.default_rng(seed)
        weights = rng.normal(size=length)
        activations = rng.normal(size=length)
        partial_sums, total = dot_product_partial_sums(weights, activations, chunk)
        assert total == pytest.approx(float(weights @ activations), rel=1e-9, abs=1e-9)
        assert partial_sums.size == math.ceil(length / chunk)

    @given(
        st.integers(min_value=1, max_value=1000),
        st.integers(min_value=1, max_value=5000),
        st.integers(min_value=1, max_value=300),
        st.integers(min_value=1, max_value=200),
    )
    def test_cycle_counts_cover_all_operations(self, length, count, unit_size, n_units):
        plan = plan_layer(length, count, unit_size)
        cycles = plan.cycles_on_units(n_units)
        # Enough cycles to cover every unit-operation, but no more than one
        # extra cycle of slack.
        assert cycles * n_units >= plan.total_unit_operations
        assert (cycles - 1) * n_units < plan.total_unit_operations or cycles == 0

    @given(st.integers(min_value=1, max_value=150), st.integers(min_value=40, max_value=60))
    def test_vdp_dot_product_matches_numpy(self, length, seed):
        rng = np.random.default_rng(seed)
        unit = VDPUnit(vector_size=150, mrs_per_bank=15)
        weights = rng.normal(size=length)
        activations = rng.normal(size=length)
        assert unit.dot_product(weights, activations) == pytest.approx(
            float(weights @ activations), rel=1e-9, abs=1e-9
        )


class TestCrosstalkProperties:
    @settings(deadline=None)
    @given(
        st.integers(min_value=2, max_value=25),
        st.floats(min_value=0.2, max_value=3.0),
        st.floats(min_value=2000.0, max_value=20000.0),
    )
    def test_resolution_report_consistency(self, n_channels, spacing, q):
        report = analyze_bank_resolution(n_channels, spacing, q)
        assert report.worst_case_noise > 0
        assert report.resolution_bits >= 1
        wider = analyze_bank_resolution(n_channels, spacing * 2, q)
        assert wider.worst_case_noise <= report.worst_case_noise + 1e-15

    @settings(deadline=None)
    @given(st.integers(min_value=2, max_value=20), st.floats(min_value=1.0, max_value=60.0))
    def test_ted_never_worse_than_naive(self, n_rings, pitch):
        ted = ThermalEigenmodeDecomposition()
        result = ted.solve(np.full(n_rings, 0.7), pitch_um=float(pitch))
        assert result.ted_total_power_w <= result.naive_total_power_w + 1e-9
        assert np.all(result.ted_powers_w >= 0)


class TestSoftmaxProperties:
    @given(
        hnp.arrays(
            dtype=float,
            shape=st.tuples(
                st.integers(min_value=1, max_value=8), st.integers(min_value=2, max_value=10)
            ),
            elements=st.floats(min_value=-50, max_value=50, allow_nan=False),
        )
    )
    def test_softmax_is_probability_distribution(self, logits):
        probabilities = F.softmax(logits, axis=1)
        np.testing.assert_allclose(probabilities.sum(axis=1), 1.0, rtol=1e-9)
        assert np.all(probabilities >= 0)
        assert np.all(probabilities <= 1)
