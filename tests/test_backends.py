"""Parity tests for the pluggable compute backends and precision policies.

The numpy backend is the *reference*: under the float64 policy every kernel
must be bit-identical to the pre-refactor slice-loop implementations (copied
below verbatim from the seed revision of :mod:`repro.nn.functional`), which
is what keeps the committed fig5/ablation accuracy records stable across the
backend refactor.  Under the float32 policy the same kernels run in single
precision with a bounded relative error on the outputs.  The numba backend,
when the optional package is installed, must match the numpy backend
bit-for-bit at float64.
"""

from __future__ import annotations

import copy

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import functional as F
from repro.nn.backend import (
    FLOAT32_FAST,
    FLOAT64_EXACT,
    available_backends,
    get_backend,
    resolve_precision,
    use_backend,
)
from repro.nn.layers import Conv2D, Dense


def _numba_missing() -> bool:
    return "numba" not in available_backends()


# --------------------------------------------------------------------------- #
# Reference implementations (pre-refactor, copied from the seed revision)
# --------------------------------------------------------------------------- #
def ref_im2col(images, kernel_h, kernel_w, stride=1, padding=0):
    n, c, h, w = images.shape
    out_h = F.conv_output_size(h, kernel_h, stride, padding)
    out_w = F.conv_output_size(w, kernel_w, stride, padding)
    padded = np.pad(
        images, ((0, 0), (0, 0), (padding, padding), (padding, padding)), mode="constant"
    )
    cols = np.empty((n, c, kernel_h, kernel_w, out_h, out_w), dtype=images.dtype)
    for y in range(kernel_h):
        y_max = y + stride * out_h
        for x in range(kernel_w):
            x_max = x + stride * out_w
            cols[:, :, y, x, :, :] = padded[:, :, y:y_max:stride, x:x_max:stride]
    return cols.transpose(0, 4, 5, 1, 2, 3).reshape(n * out_h * out_w, -1)


def ref_col2im(cols, input_shape, kernel_h, kernel_w, stride=1, padding=0):
    n, c, h, w = input_shape
    out_h = F.conv_output_size(h, kernel_h, stride, padding)
    out_w = F.conv_output_size(w, kernel_w, stride, padding)
    cols = cols.reshape(n, out_h, out_w, c, kernel_h, kernel_w).transpose(0, 3, 4, 5, 1, 2)
    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)
    for y in range(kernel_h):
        y_max = y + stride * out_h
        for x in range(kernel_w):
            x_max = x + stride * out_w
            padded[:, :, y:y_max:stride, x:x_max:stride] += cols[:, :, y, x, :, :]
    if padding == 0:
        return padded
    return padded[:, :, padding:-padding, padding:-padding]


conv_geometries = st.tuples(
    st.integers(min_value=1, max_value=3),  # n
    st.integers(min_value=1, max_value=4),  # c
    st.integers(min_value=3, max_value=9),  # h
    st.integers(min_value=3, max_value=9),  # w
    st.integers(min_value=1, max_value=3),  # kernel
    st.integers(min_value=1, max_value=2),  # stride
    st.integers(min_value=0, max_value=2),  # padding
).filter(lambda g: g[2] + 2 * g[6] >= g[4] and g[3] + 2 * g[6] >= g[4])


class TestNumpyBackendBitIdentity:
    """The numpy backend reproduces the seed kernels bit-for-bit (float64)."""

    @settings(max_examples=40, deadline=None)
    @given(conv_geometries, st.integers(min_value=0, max_value=2**31 - 1))
    def test_im2col_matches_reference(self, geometry, seed):
        n, c, h, w, k, stride, padding = geometry
        images = np.random.default_rng(seed).standard_normal((n, c, h, w))
        expected = ref_im2col(images, k, k, stride, padding)
        result = F.im2col(images, k, k, stride, padding)
        assert result.dtype == expected.dtype
        np.testing.assert_array_equal(result, expected)

    @settings(max_examples=40, deadline=None)
    @given(conv_geometries, st.integers(min_value=0, max_value=2**31 - 1))
    def test_col2im_matches_reference(self, geometry, seed):
        n, c, h, w, k, stride, padding = geometry
        out_h = F.conv_output_size(h, k, stride, padding)
        out_w = F.conv_output_size(w, k, stride, padding)
        cols = np.random.default_rng(seed).standard_normal(
            (n * out_h * out_w, c * k * k)
        )
        expected = ref_col2im(cols, (n, c, h, w), k, k, stride, padding)
        result = F.col2im(cols, (n, c, h, w), k, k, stride, padding)
        assert result.dtype == expected.dtype
        np.testing.assert_array_equal(result, expected)

    def test_dense_forward_matches_reference(self, rng):
        layer = Dense(12, 7)
        inputs = rng.standard_normal((9, 12))
        np.testing.assert_array_equal(
            layer.forward(inputs), inputs @ layer.weight + layer.bias
        )

    def test_conv2d_forward_matches_reference(self, rng):
        layer = Conv2D(3, 5, kernel_size=3, stride=1, padding=1)
        inputs = rng.standard_normal((4, 3, 8, 8))
        cols = ref_im2col(inputs, 3, 3, 1, 1)
        expected = (
            (cols @ layer.weight.reshape(5, -1).T + layer.bias)
            .reshape(4, 8, 8, 5)
            .transpose(0, 3, 1, 2)
        )
        np.testing.assert_array_equal(layer.forward(inputs), expected)

    def test_ensemble_dense_matches_member_loop(self, rng):
        inputs = rng.standard_normal((4, 6, 10))
        weights = rng.standard_normal((4, 10, 3))
        result = F.ensemble_dense(inputs, weights)
        for member in range(4):
            np.testing.assert_array_equal(result[member], inputs[member] @ weights[member])

    def test_ensemble_conv2d_matches_member_loop(self, rng):
        layer = Conv2D(2, 4, kernel_size=3, stride=1, padding=1)
        inputs = rng.standard_normal((3, 2, 7, 7))
        weights = np.stack(
            [layer.weight + 0.01 * rng.standard_normal(layer.weight.shape) for _ in range(3)]
        )
        result = layer.forward_ensemble(inputs, weights)
        for member in range(3):
            layer.weight = weights[member]
            np.testing.assert_array_equal(result[member], layer.forward(inputs))


class TestFloat32Tolerance:
    """Float32 kernels stay within the policy's documented relative error."""

    @settings(max_examples=25, deadline=None)
    @given(conv_geometries, st.integers(min_value=0, max_value=2**31 - 1))
    def test_im2col_float32_is_exact(self, geometry, seed):
        # Gathers move values without arithmetic, so even float32 is exact.
        n, c, h, w, k, stride, padding = geometry
        images = np.random.default_rng(seed).standard_normal((n, c, h, w))
        result = F.im2col(images.astype(np.float32), k, k, stride, padding)
        assert result.dtype == np.float32
        np.testing.assert_array_equal(
            result, ref_im2col(images, k, k, stride, padding).astype(np.float32)
        )

    def test_conv2d_float32_logits_within_policy(self, rng):
        layer64 = Conv2D(3, 5, kernel_size=3, stride=1, padding=1)
        inputs = rng.standard_normal((4, 3, 8, 8))
        expected = layer64.forward(inputs)
        layer32 = Conv2D(3, 5, kernel_size=3, stride=1, padding=1)
        layer32.weight = layer64.weight.astype(np.float32)
        layer32.bias = layer64.bias.astype(np.float32)
        result = layer32.forward(inputs.astype(np.float32))
        assert result.dtype == np.float32
        np.testing.assert_allclose(
            result, expected, rtol=FLOAT32_FAST.rtol, atol=FLOAT32_FAST.atol
        )

    def test_full_classifier_float32_logits_within_policy(self, trained_compact_lenet):
        # The end-to-end tolerance contract: cast a trained float64 model to
        # float32 and the inference logits agree within the policy bounds.
        model, test_x, _ = trained_compact_lenet
        expected = model.predict(test_x[:64])
        model32 = copy.deepcopy(model).astype(np.float32)
        result = model32.predict(test_x[:64].astype(np.float32))
        assert result.dtype == np.float32
        np.testing.assert_allclose(
            result, expected, rtol=FLOAT32_FAST.rtol, atol=FLOAT32_FAST.atol
        )


class TestBackendRegistry:
    def test_numpy_backend_always_available(self):
        assert "numpy" in available_backends()
        assert get_backend("numpy").name == "numpy"
        assert not get_backend("numpy").accelerated

    def test_auto_resolves_to_a_registered_backend(self):
        assert get_backend("auto").name in available_backends()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_backend("cuda")

    def test_use_backend_none_is_a_noop(self):
        from repro.nn.backend import active_backend

        before = active_backend().name
        with use_backend(None):
            assert active_backend().name == before
        assert active_backend().name == before

    def test_use_backend_restores_on_exit(self):
        from repro.nn.backend import active_backend

        before = active_backend().name
        with use_backend("numpy"):
            assert active_backend().name == "numpy"
        assert active_backend().name == before


class TestPrecisionPolicies:
    def test_resolve_names_dtypes_and_policies(self):
        assert resolve_precision(None) is FLOAT64_EXACT
        assert resolve_precision("float64") is FLOAT64_EXACT
        assert resolve_precision("float32") is FLOAT32_FAST
        assert resolve_precision(np.float32) is FLOAT32_FAST
        assert resolve_precision(np.dtype(np.float64)) is FLOAT64_EXACT
        assert resolve_precision(FLOAT32_FAST) is FLOAT32_FAST

    def test_exactness_flags(self):
        assert FLOAT64_EXACT.exact
        assert not FLOAT32_FAST.exact
        assert FLOAT64_EXACT.rtol == 0.0

    def test_bad_specs_rejected(self):
        with pytest.raises(ValueError):
            resolve_precision("float16")
        with pytest.raises(ValueError):
            resolve_precision(np.int32)


@pytest.mark.skipif(_numba_missing(), reason="optional numba backend not installed")
class TestNumbaBackendParity:
    """The accelerated backend must be bit-identical to numpy at float64."""

    @settings(max_examples=15, deadline=None)
    @given(conv_geometries, st.integers(min_value=0, max_value=2**31 - 1))
    def test_im2col_parity(self, geometry, seed):
        n, c, h, w, k, stride, padding = geometry
        images = np.random.default_rng(seed).standard_normal((n, c, h, w))
        expected = get_backend("numpy").im2col(images, k, k, stride, padding)
        result = get_backend("numba").im2col(images, k, k, stride, padding)
        np.testing.assert_array_equal(result, expected)

    @settings(max_examples=15, deadline=None)
    @given(conv_geometries, st.integers(min_value=0, max_value=2**31 - 1))
    def test_col2im_parity(self, geometry, seed):
        n, c, h, w, k, stride, padding = geometry
        out_h = F.conv_output_size(h, k, stride, padding)
        out_w = F.conv_output_size(w, k, stride, padding)
        cols = np.random.default_rng(seed).standard_normal((n * out_h * out_w, c * k * k))
        expected = get_backend("numpy").col2im(cols, (n, c, h, w), k, k, stride, padding)
        result = get_backend("numba").col2im(cols, (n, c, h, w), k, k, stride, padding)
        np.testing.assert_array_equal(result, expected)

    def test_conv_forward_parity(self, rng):
        layer = Conv2D(3, 5, kernel_size=3, stride=2, padding=1)
        inputs = rng.standard_normal((4, 3, 9, 9))
        with use_backend("numpy"):
            expected = layer.forward(inputs)
        with use_backend("numba"):
            result = layer.forward(inputs)
        np.testing.assert_array_equal(result, expected)


class TestFig5DriverParity:
    """Backend routing leaves the fig5 float64 records untouched."""

    def test_explicit_numpy_backend_matches_default(self):
        from repro.experiments.fig5_resolution_accuracy import run_for_model

        kwargs = dict(
            model_index=1, bits_sweep=(2, 8), epochs=2, n_train=80, n_test=40
        )
        default = run_for_model(**kwargs)
        explicit = run_for_model(backend="numpy", precision="float64", **kwargs)
        assert default.accuracy == explicit.accuracy

    def test_float32_curve_stays_in_unit_interval(self):
        from repro.experiments.fig5_resolution_accuracy import run_for_model

        curve = run_for_model(
            model_index=1, bits_sweep=(2, 8), epochs=2, n_train=80, n_test=40,
            precision="float32",
        )
        assert all(0.0 <= a <= 1.0 for a in curve.accuracy)
