"""Unit tests for active devices: lasers, photodetectors, modulators,
microdisks, and ADC/DAC converters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.devices import (
    BalancedPhotodetector,
    ConverterArray,
    LaserSource,
    MachZehnderModulator,
    Microdisk,
    PD_SENSITIVITY_DBM,
    Photodetector,
    ReceiverChain,
    TransimpedanceAmplifier,
    VCSELEmitter,
    adc_channel,
    dac_channel,
    required_laser_power_dbm,
    required_laser_power_watt,
)


class TestLaserPowerModel:
    def test_equation7_structure(self):
        # P_laser = S_detector + loss + 10 log10(N_lambda)
        power = required_laser_power_dbm(photonic_loss_db=5.0, n_wavelengths=10)
        assert power == pytest.approx(PD_SENSITIVITY_DBM + 5.0 + 10.0)

    def test_single_wavelength_has_no_wdm_penalty(self):
        power = required_laser_power_dbm(photonic_loss_db=3.0, n_wavelengths=1)
        assert power == pytest.approx(PD_SENSITIVITY_DBM + 3.0)

    def test_power_monotone_in_loss(self):
        losses = np.linspace(0.0, 30.0, 20)
        powers = [required_laser_power_watt(loss, 15) for loss in losses]
        assert all(b > a for a, b in zip(powers, powers[1:]))

    def test_power_monotone_in_wavelength_count(self):
        powers = [required_laser_power_watt(5.0, n) for n in (1, 2, 4, 8, 16)]
        assert all(b > a for a, b in zip(powers, powers[1:]))

    def test_3db_more_loss_doubles_power(self):
        base = required_laser_power_watt(5.0, 4)
        more = required_laser_power_watt(8.0103, 4)
        assert more == pytest.approx(2 * base, rel=1e-3)

    def test_laser_source_electrical_exceeds_optical(self):
        laser = LaserSource(n_wavelengths=15, wall_plug_efficiency=0.25)
        optical = laser.optical_power_watt(6.0)
        electrical = laser.electrical_power_watt(6.0)
        assert electrical == pytest.approx(optical / 0.25)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            required_laser_power_dbm(-1.0, 4)
        with pytest.raises((TypeError, ValueError)):
            required_laser_power_dbm(1.0, 0)


class TestPhotodetectors:
    def test_photocurrent_sums_wavelength_powers(self):
        pd = Photodetector(responsivity_a_per_w=0.8)
        current = pd.photocurrent_a([1e-3, 2e-3, 3e-3])
        assert current == pytest.approx(0.8 * 6e-3)

    def test_photocurrent_rejects_negative_power(self):
        pd = Photodetector()
        with pytest.raises(ValueError):
            pd.photocurrent_a([-1e-3])

    def test_balanced_pd_computes_signed_difference(self):
        bpd = BalancedPhotodetector()
        positive = [3e-3]
        negative = [1e-3, 1e-3]
        current = bpd.differential_current_a(positive, negative)
        assert current == pytest.approx(1e-3)
        assert bpd.differential_current_a(negative, positive) == pytest.approx(-1e-3)

    def test_receiver_chain_latency_and_power_compose(self):
        chain = ReceiverChain()
        assert chain.latency_s == pytest.approx(
            chain.detector.latency_s + chain.tia.latency_s
        )
        assert chain.power_w == pytest.approx(chain.detector.power_w + chain.tia.power_w)

    def test_tia_voltage_proportional_to_current(self):
        tia = TransimpedanceAmplifier(gain_ohm=5e3)
        assert tia.output_voltage_v(1e-3) == pytest.approx(5.0)

    def test_table2_values_wired_in(self):
        pd = Photodetector()
        assert pd.latency_s == pytest.approx(5.8e-12)
        assert pd.power_w == pytest.approx(2.8e-3)
        tia = TransimpedanceAmplifier()
        assert tia.latency_s == pytest.approx(0.15e-9)
        assert tia.power_w == pytest.approx(7.2e-3)


class TestModulators:
    def test_mzm_scales_power_by_activation(self):
        mzm = MachZehnderModulator(insertion_loss_db=0.0)
        assert mzm.modulate(1e-3, 0.5) == pytest.approx(0.5e-3)

    def test_mzm_insertion_loss_applied(self):
        mzm = MachZehnderModulator(insertion_loss_db=3.0103)
        assert mzm.modulate(1e-3, 1.0) == pytest.approx(0.5e-3, rel=1e-3)

    def test_mzm_extinction_floor(self):
        mzm = MachZehnderModulator(extinction_ratio_db=20.0, insertion_loss_db=0.0)
        assert mzm.modulate(1e-3, 0.0) == pytest.approx(1e-5)

    def test_mzm_vectorised_matches_scalar(self, rng):
        mzm = MachZehnderModulator()
        activations = rng.uniform(0, 1, size=8)
        vector = mzm.modulate_vector(2e-3, activations)
        scalars = [mzm.modulate(2e-3, float(a)) for a in activations]
        np.testing.assert_allclose(vector, scalars)

    def test_mzm_rejects_out_of_range_activation(self):
        with pytest.raises(ValueError):
            MachZehnderModulator().modulate(1e-3, 1.5)

    def test_vcsel_table2_values(self):
        vcsel = VCSELEmitter()
        assert vcsel.latency_s == pytest.approx(10e-9)
        assert vcsel.power_w == pytest.approx(0.66e-3)

    def test_vcsel_emission_scales_with_value(self):
        vcsel = VCSELEmitter()
        assert vcsel.emit(0.5) == pytest.approx(vcsel.optical_output_power_w * 0.5)
        assert vcsel.emit(0.0) == 0.0


class TestMicrodisk:
    def test_devices_for_16_bits_is_8(self):
        disk = Microdisk(bits_per_device=2)
        assert disk.devices_for_resolution(16) == 8

    def test_ganged_loss_scales_with_devices(self):
        disk = Microdisk()
        assert disk.ganged_loss_db(16) == pytest.approx(8 * disk.insertion_loss_db)
        assert disk.ganged_loss_db(2) == pytest.approx(disk.insertion_loss_db)

    def test_microdisk_lossier_than_mr_through(self):
        from repro.devices import DEFAULT_LOSSES

        assert Microdisk().insertion_loss_db > DEFAULT_LOSSES.mr_through_db

    def test_microdisk_smaller_than_mr(self):
        from repro.devices import MicroringResonator

        assert Microdisk().footprint_um2 < MicroringResonator.optimized().footprint_um2


class TestConverters:
    def test_dac_adc_constructors(self):
        assert dac_channel().kind == "DAC"
        assert adc_channel(8).resolution_bits == 8

    def test_conversion_latency_from_rate(self):
        channel = dac_channel()
        assert channel.conversion_latency_s == pytest.approx(1.0 / (channel.sample_rate_gsps * 1e9))

    def test_array_power_scales_with_channels(self):
        array = ConverterArray(channel=adc_channel(), n_channels=10)
        assert array.total_power_w == pytest.approx(10 * adc_channel().power_w)

    def test_vector_conversion_serialises_over_channels(self):
        array = ConverterArray(channel=dac_channel(), n_channels=4)
        single_pass = array.time_for_vector_s(4)
        two_passes = array.time_for_vector_s(5)
        assert two_passes == pytest.approx(2 * single_pass)

    def test_time_for_samples_positive_int_required(self):
        with pytest.raises((TypeError, ValueError)):
            dac_channel().time_for_samples_s(0)
