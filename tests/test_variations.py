"""Unit tests for fabrication-process-variation and thermal models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.devices import CONVENTIONAL_MR, OPTIMIZED_MR
from repro.variations import (
    FPVDriftSampler,
    HeatSolver1D,
    ProcessVariationModel,
    StackProperties,
    ThermalCrosstalkModel,
    best_design,
    drift_reduction_percent,
    evaluate_design,
    expected_fpv_drift_nm,
    explore_design_space,
    fit_decay_length_um,
    phase_crosstalk_ratio,
    temperature_rise_from_heater,
    width_sensitivity_nm_per_nm,
)


class TestFPVModel:
    def test_calibrated_drifts_match_paper(self):
        assert expected_fpv_drift_nm(CONVENTIONAL_MR) == pytest.approx(7.1, abs=0.15)
        assert expected_fpv_drift_nm(OPTIMIZED_MR) == pytest.approx(2.1, abs=0.1)

    def test_drift_reduction_is_about_70_percent(self):
        assert drift_reduction_percent() == pytest.approx(70.0, abs=3.0)

    def test_wider_ring_waveguide_is_less_sensitive(self):
        assert width_sensitivity_nm_per_nm(OPTIMIZED_MR) < width_sensitivity_nm_per_nm(
            CONVENTIONAL_MR
        )

    def test_drift_scales_with_wafer_sigma(self):
        tight = ProcessVariationModel(width_sigma_nm=1.0)
        loose = ProcessVariationModel(width_sigma_nm=8.0)
        assert expected_fpv_drift_nm(OPTIMIZED_MR, loose) > expected_fpv_drift_nm(
            OPTIMIZED_MR, tight
        )

    def test_sampler_is_reproducible_and_scaled(self):
        sampler_a = FPVDriftSampler(design=OPTIMIZED_MR, seed=7)
        sampler_b = FPVDriftSampler(design=OPTIMIZED_MR, seed=7)
        np.testing.assert_allclose(sampler_a.sample(100), sampler_b.sample(100))

    def test_sampler_conventional_has_larger_spread(self):
        conventional = FPVDriftSampler(design=CONVENTIONAL_MR, seed=0)
        optimized = FPVDriftSampler(design=OPTIMIZED_MR, seed=0)
        assert conventional.sigma_nm > optimized.sigma_nm
        assert conventional.mean_absolute_drift_nm() > optimized.mean_absolute_drift_nm()

    def test_sampler_rejects_bad_correlation(self):
        sampler = FPVDriftSampler()
        with pytest.raises(ValueError):
            sampler.sample(10, bank_correlation=1.5)


class TestThermalCrosstalk:
    def test_coupling_decays_exponentially(self):
        model = ThermalCrosstalkModel(decay_length_um=7.0)
        assert model.coupling(0.0) == pytest.approx(1.0)
        assert model.coupling(7.0) == pytest.approx(np.exp(-1.0))
        assert model.coupling(70.0) < 1e-4

    def test_phase_crosstalk_ratio_wrapper(self):
        distances = np.array([1.0, 5.0, 20.0])
        ratios = phase_crosstalk_ratio(distances)
        assert np.all(np.diff(ratios) < 0)

    def test_crosstalk_matrix_symmetric_unit_diagonal(self):
        model = ThermalCrosstalkModel()
        matrix = model.crosstalk_matrix(8, 5.0)
        np.testing.assert_allclose(matrix, matrix.T)
        np.testing.assert_allclose(np.diag(matrix), 1.0)

    def test_phase_from_powers_roundtrip(self):
        model = ThermalCrosstalkModel()
        target = np.array([0.5, 0.8, 0.3, 0.6])
        powers = model.heater_powers_for_phase(target, pitch_um=30.0)
        realised = model.phase_from_heater_powers(powers, pitch_um=30.0)
        np.testing.assert_allclose(realised, target, rtol=1e-6)

    def test_temperature_rise_decays_with_distance(self):
        near = temperature_rise_from_heater(27.5e-3, 0.0)
        far = temperature_rise_from_heater(27.5e-3, 50.0)
        assert near > far
        assert 10.0 < near < 100.0  # tens of kelvin at the heater

    def test_negative_distance_rejected(self):
        model = ThermalCrosstalkModel()
        with pytest.raises(ValueError):
            model.coupling(-1.0)


class TestHeatSolver:
    def test_profile_peaks_at_heater_and_decays(self):
        solver = HeatSolver1D()
        profile = solver.solve(10e-3)
        grid = solver.grid_um
        center_temp = solver.temperature_at(profile, 0.0)
        far_temp = solver.temperature_at(profile, 100.0)
        assert center_temp > 0
        assert far_temp < 0.2 * center_temp
        assert profile[np.argmin(np.abs(grid))] == pytest.approx(center_temp, rel=1e-6)

    def test_profile_scales_linearly_with_power(self):
        solver = HeatSolver1D()
        low = solver.solve(5e-3)
        high = solver.solve(10e-3)
        np.testing.assert_allclose(high, 2 * low, rtol=1e-6)

    def test_fitted_decay_length_matches_analytic(self):
        stack = StackProperties()
        fitted = fit_decay_length_um()
        assert fitted == pytest.approx(stack.analytic_decay_length_um, rel=0.25)

    def test_fitted_decay_length_near_model_default(self):
        # The analytic crosstalk model default (7 um) should be consistent
        # with the heat-solver calibration to within a couple of micrometres.
        assert abs(fit_decay_length_um() - ThermalCrosstalkModel().decay_length_um) < 2.0

    def test_invalid_fit_range_rejected(self):
        with pytest.raises(ValueError):
            fit_decay_length_um(fit_range_um=(10.0, 5.0))


class TestDeviceDesignSpace:
    def test_best_design_is_400_800(self):
        winner = best_design()
        assert winner.input_waveguide_width_nm == pytest.approx(400.0)
        assert winner.ring_waveguide_width_nm == pytest.approx(800.0)

    def test_exploration_sorted_by_figure_of_merit(self):
        candidates = explore_design_space()
        foms = [c.figure_of_merit for c in candidates]
        assert foms == sorted(foms)

    def test_drift_decreases_with_ring_width(self):
        narrow = evaluate_design(400.0, 400.0)
        wide = evaluate_design(400.0, 800.0)
        assert wide.fpv_drift_nm < narrow.fpv_drift_nm

    def test_empty_candidate_list_rejected(self):
        with pytest.raises(ValueError):
            best_design(candidates=[])
