"""Tests for the composable noise-channel stack (:mod:`repro.sim.noise`)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices.mr import MicroringResonator
from repro.nn.quantization import quantize_array
from repro.sim import (
    FPVDriftChannel,
    InterChannelCrosstalkChannel,
    NoiseChannel,
    NoiseStack,
    PhotonicInferenceEngine,
    QuantizationChannel,
    ResidualDriftChannel,
    ThermalCrosstalkChannel,
    default_noise_stack,
    monte_carlo_accuracy,
)


def _legacy_perturbed_weights(
    weights: np.ndarray, resolution_bits: int, residual_drift_nm: float, seed: int
) -> np.ndarray:
    """The PR-1 engine's weight perturbation, reimplemented verbatim."""
    rng = np.random.default_rng(seed)
    quantized = quantize_array(weights, resolution_bits)
    if residual_drift_nm <= 0.0:
        return quantized
    max_abs = float(np.max(np.abs(quantized)))
    if max_abs == 0.0:
        return quantized
    normalised = np.abs(quantized) / max_abs
    mr = MicroringResonator.optimized()
    errors = np.asarray(mr.transmission_error_from_drift(normalised, residual_drift_nm))
    signs = rng.choice([-1.0, 1.0], size=errors.shape)
    return quantized + signs * errors * max_abs


ALL_ZERO_MAGNITUDE_CHANNELS = [
    QuantizationChannel(bits=None),
    ResidualDriftChannel(residual_drift_nm=0.0),
    FPVDriftChannel(residual_fraction=0.0),
    InterChannelCrosstalkChannel(calibration_rejection_db=np.inf),
    ThermalCrosstalkChannel(coupling_scale=0.0),
]


class TestLegacyEquivalence:
    """The default two-channel stack is the PR-1 engine, elementwise."""

    @settings(max_examples=25, deadline=None)
    @given(
        data_seed=st.integers(min_value=0, max_value=2**16),
        bits=st.sampled_from([2, 4, 8, 16]),
        drift_nm=st.floats(min_value=0.0, max_value=3.0, allow_nan=False),
        sign_seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_stack_matches_legacy_engine_elementwise(
        self, data_seed, bits, drift_nm, sign_seed
    ):
        weights = np.random.default_rng(data_seed).normal(size=(7, 5))
        engine = PhotonicInferenceEngine(
            resolution_bits=bits, residual_drift_nm=drift_nm, seed=sign_seed
        )
        expected = _legacy_perturbed_weights(weights, bits, drift_nm, sign_seed)
        np.testing.assert_array_equal(engine.perturbed_weights(weights), expected)

    def test_explicit_default_stack_matches_legacy_constructor(self, rng):
        weights = rng.normal(size=(16, 9))
        legacy = PhotonicInferenceEngine(resolution_bits=8, residual_drift_nm=0.7, seed=3)
        stacked = PhotonicInferenceEngine.from_stack(
            default_noise_stack(resolution_bits=8, residual_drift_nm=0.7),
            activation_bits=8,
            seed=3,
        )
        np.testing.assert_array_equal(
            legacy.perturbed_weights(weights), stacked.perturbed_weights(weights)
        )

    def test_legacy_attributes_derived_from_stack(self):
        engine = PhotonicInferenceEngine.from_stack(
            default_noise_stack(resolution_bits=4, residual_drift_nm=1.5)
        )
        assert engine.resolution_bits == 4
        assert engine.residual_drift_nm == pytest.approx(1.5)
        assert isinstance(engine.mr, MicroringResonator)


class TestChannelNoOps:
    @pytest.mark.parametrize(
        "channel", ALL_ZERO_MAGNITUDE_CHANNELS, ids=lambda c: type(c).__name__
    )
    def test_zero_magnitude_channel_is_identity(self, channel, rng):
        weights = rng.normal(size=(6, 4, 2))
        out = np.asarray(channel.apply(weights, np.random.default_rng(0)))
        np.testing.assert_array_equal(out, weights)

    @pytest.mark.parametrize(
        "channel", ALL_ZERO_MAGNITUDE_CHANNELS, ids=lambda c: type(c).__name__
    )
    def test_zero_magnitude_channel_consumes_no_randomness(self, channel, rng):
        weights = rng.normal(size=(5, 5))
        consumed = np.random.default_rng(42)
        channel.apply(weights, consumed)
        untouched = np.random.default_rng(42)
        assert consumed.bit_generator.state == untouched.bit_generator.state

    def test_zero_variance_fpv_model_is_identity(self, rng):
        from repro.variations.fpv import ProcessVariationModel

        channel = FPVDriftChannel(
            variation=ProcessVariationModel(width_sigma_nm=0.0, thickness_sigma_nm=0.0)
        )
        weights = rng.normal(size=(4, 4))
        np.testing.assert_array_equal(channel.apply(weights, np.random.default_rng(0)), weights)

    def test_empty_stack_is_identity(self, rng):
        weights = rng.normal(size=(3, 3))
        stack = NoiseStack()
        np.testing.assert_array_equal(stack.apply(weights, np.random.default_rng(0)), weights)
        assert stack.describe() == "ideal"

    def test_stack_never_aliases_the_input(self, rng):
        # Even an all-no-op stack must hand back a fresh array, so callers
        # can mutate the result without corrupting live model weights.
        weights = rng.normal(size=(4, 4))
        for stack in (NoiseStack(), NoiseStack([QuantizationChannel(bits=None)])):
            out = stack.apply(weights, np.random.default_rng(0))
            assert not np.may_share_memory(out, weights)
            out[...] = 0.0
            assert not np.allclose(weights, 0.0)


class TestChannelBehaviour:
    def test_all_channels_satisfy_protocol(self):
        for channel in ALL_ZERO_MAGNITUDE_CHANNELS + [NoiseStack()]:
            assert isinstance(channel, NoiseChannel)

    def test_fpv_channel_perturbs_and_is_seed_reproducible(self, rng):
        weights = rng.normal(size=(8, 8))
        channel = FPVDriftChannel()
        out_a = channel.apply(weights, np.random.default_rng(5))
        out_b = channel.apply(weights, np.random.default_rng(5))
        out_c = channel.apply(weights, np.random.default_rng(6))
        np.testing.assert_array_equal(out_a, out_b)
        assert not np.array_equal(out_a, out_c)
        assert not np.array_equal(out_a, weights)
        assert out_a.shape == weights.shape

    def test_interchannel_crosstalk_adds_power(self, rng):
        weights = np.abs(rng.normal(size=45)) + 0.05
        channel = InterChannelCrosstalkChannel(calibration_rejection_db=10.0)
        out = channel.apply(weights, np.random.default_rng(0))
        # Crosstalk only ever couples power *into* a channel, so magnitudes
        # grow (up to the unit-transmission clip) and signs are preserved.
        assert np.all(out >= weights - 1e-12)
        assert not np.array_equal(out, weights)

    def test_stronger_calibration_means_less_crosstalk(self, rng):
        weights = rng.normal(size=(10, 6))
        weak = InterChannelCrosstalkChannel(calibration_rejection_db=5.0)
        strong = InterChannelCrosstalkChannel(calibration_rejection_db=40.0)
        base = np.abs(weights)
        weak_delta = np.abs(np.abs(weak.apply(weights, np.random.default_rng(0))) - base).sum()
        strong_delta = np.abs(
            np.abs(strong.apply(weights, np.random.default_rng(0))) - base
        ).sum()
        assert weak_delta > strong_delta

    def test_thermal_crosstalk_decays_with_pitch(self, rng):
        weights = rng.normal(size=(9, 5))
        near = ThermalCrosstalkChannel(pitch_um=5.0)
        far = ThermalCrosstalkChannel(pitch_um=100.0)
        near_delta = np.abs(near.apply(weights, np.random.default_rng(0)) - weights).sum()
        far_delta = np.abs(far.apply(weights, np.random.default_rng(0)) - weights).sum()
        assert near_delta > far_delta
        # At 100 um the exponential coupling is ~6e-7; the summed residual
        # perturbation is orders of magnitude below the 5 um case.
        assert far_delta < 1e-2 * near_delta

    def test_channels_do_not_mutate_input(self, rng):
        weights = rng.normal(size=(6, 6))
        original = weights.copy()
        stack = NoiseStack(
            [QuantizationChannel(4), FPVDriftChannel(), InterChannelCrosstalkChannel()]
        )
        stack.apply(weights, np.random.default_rng(0))
        np.testing.assert_array_equal(weights, original)

    def test_stack_composition_and_describe(self):
        stack = NoiseStack([QuantizationChannel(8)])
        longer = stack.with_channel(FPVDriftChannel())
        assert len(stack) == 1 and len(longer) == 2
        assert "quantization(8 bit)" in longer.describe()
        assert "fpv-drift" in longer.describe()

    def test_stack_rejects_non_channels(self):
        with pytest.raises(TypeError):
            NoiseStack([object()])

    def test_invalid_channel_parameters_rejected(self):
        with pytest.raises((TypeError, ValueError)):
            QuantizationChannel(bits=0)
        with pytest.raises(ValueError):
            ResidualDriftChannel(residual_drift_nm=-0.5)
        with pytest.raises(ValueError):
            FPVDriftChannel(bank_correlation=1.5)
        with pytest.raises(ValueError):
            InterChannelCrosstalkChannel(calibration_rejection_db=-1.0)
        with pytest.raises(ValueError):
            ThermalCrosstalkChannel(pitch_um=0.0)


class TestMonteCarloAccuracy:
    @pytest.fixture(scope="class")
    def fpv_stack(self):
        return NoiseStack([QuantizationChannel(8), FPVDriftChannel()])

    def test_seeded_runs_are_deterministic(self, trained_compact_lenet, fpv_stack):
        model, test_x, test_y = trained_compact_lenet
        first = monte_carlo_accuracy(
            model, test_x, test_y, fpv_stack, seeds=8, activation_bits=8
        )
        second = monte_carlo_accuracy(
            model, test_x, test_y, fpv_stack, seeds=8, activation_bits=8
        )
        assert first.seeds == tuple(range(8))
        assert first.accuracies == second.accuracies
        assert len(first.records) == 8
        assert all(0.0 <= a <= 1.0 for a in first.accuracies)
        assert first.mean_accuracy == pytest.approx(float(np.mean(first.accuracies)))
        assert first.std_accuracy == pytest.approx(float(np.std(first.accuracies)))
        assert "fpv-drift" in first.noise

    def test_parallel_run_matches_serial(self, trained_compact_lenet, fpv_stack):
        model, test_x, test_y = trained_compact_lenet
        serial = monte_carlo_accuracy(
            model, test_x, test_y, fpv_stack, seeds=8, activation_bits=8
        )
        parallel = monte_carlo_accuracy(
            model, test_x, test_y, fpv_stack, seeds=8, activation_bits=8, n_workers=2
        )
        assert parallel.accuracies == serial.accuracies
        assert parallel.seeds == serial.seeds

    def test_explicit_seed_list_and_validation(self, trained_compact_lenet, fpv_stack):
        model, test_x, test_y = trained_compact_lenet
        result = monte_carlo_accuracy(
            model, test_x, test_y, fpv_stack, seeds=(3, 11), activation_bits=8
        )
        assert result.seeds == (3, 11)
        with pytest.raises(ValueError):
            monte_carlo_accuracy(model, test_x, test_y, fpv_stack, seeds=())

    def test_result_records_noise_description(self, trained_compact_lenet):
        model, test_x, test_y = trained_compact_lenet
        engine = PhotonicInferenceEngine(resolution_bits=8, residual_drift_nm=0.3)
        result = engine.evaluate(model, test_x[:32], test_y[:32])
        assert "quantization(8 bit)" in result.noise
        assert "residual-drift(0.3 nm)" in result.noise
