"""Unit tests for passive devices: waveguides, splitters, combiners, MR banks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.devices import (
    Combiner,
    DEFAULT_LOSSES,
    MRBank,
    MicroringResonator,
    SplitterTree,
    Waveguide,
    waveguide_for_mr_chain,
)


class TestWaveguide:
    def test_insertion_loss_scales_with_length(self):
        one_cm = Waveguide(length_um=10_000.0)
        assert one_cm.insertion_loss_db == pytest.approx(DEFAULT_LOSSES.propagation_db_per_cm)
        half_cm = Waveguide(length_um=5_000.0)
        assert half_cm.insertion_loss_db == pytest.approx(one_cm.insertion_loss_db / 2)

    def test_zero_length_has_zero_loss(self):
        assert Waveguide(length_um=0.0).insertion_loss_db == 0.0

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            Waveguide(length_um=-1.0)


class TestSplitterTree:
    def test_single_output_has_no_loss(self):
        tree = SplitterTree(fanout=1)
        assert tree.stages == 0
        assert tree.insertion_loss_db == 0.0

    def test_two_way_split_is_3db_plus_excess(self):
        tree = SplitterTree(fanout=2)
        assert tree.stages == 1
        assert tree.insertion_loss_db == pytest.approx(3.0103 + DEFAULT_LOSSES.splitter_db, abs=1e-3)

    def test_loss_monotone_in_fanout(self):
        losses = [SplitterTree(fanout=f).insertion_loss_db for f in (1, 2, 4, 8, 16, 32)]
        assert all(b > a for a, b in zip(losses, losses[1:]))

    def test_non_power_of_two_fanout_rounds_stages_up(self):
        assert SplitterTree(fanout=5).stages == 3

    def test_invalid_fanout_rejected(self):
        with pytest.raises((TypeError, ValueError)):
            SplitterTree(fanout=0)


class TestCombiner:
    def test_single_input_no_loss(self):
        assert Combiner(fanin=1).insertion_loss_db == 0.0

    def test_loss_per_stage(self):
        assert Combiner(fanin=4).insertion_loss_db == pytest.approx(2 * DEFAULT_LOSSES.combiner_db)

    def test_loss_monotone_in_fanin(self):
        losses = [Combiner(fanin=f).insertion_loss_db for f in (1, 2, 4, 8, 16)]
        assert all(b >= a for a, b in zip(losses, losses[1:]))


class TestMRChainWaveguide:
    def test_length_grows_with_pitch(self):
        tight = waveguide_for_mr_chain(15, 5.0)
        loose = waveguide_for_mr_chain(15, 120.0)
        assert loose.length_um > tight.length_um
        assert loose.insertion_loss_db > tight.insertion_loss_db

    def test_single_ring_chain(self):
        single = waveguide_for_mr_chain(1, 5.0)
        assert single.length_um > 0


class TestMRBank:
    def test_insertion_loss_contains_through_and_modulation_losses(self):
        bank = MRBank(n_mrs=15, mr_pitch_um=5.0)
        expected_min = 14 * DEFAULT_LOSSES.mr_through_db + DEFAULT_LOSSES.mr_modulation_db
        assert bank.insertion_loss_db >= expected_min

    def test_ted_spacing_reduces_bank_loss(self):
        tight = MRBank(n_mrs=15, mr_pitch_um=5.0)
        loose = MRBank(n_mrs=15, mr_pitch_um=120.0)
        assert tight.insertion_loss_db < loose.insertion_loss_db
        assert tight.bank_length_um < loose.bank_length_um

    def test_apply_weights_elementwise_product(self, rng):
        bank = MRBank(n_mrs=10)
        powers = rng.uniform(0.1, 1.0, size=10)
        weights = rng.uniform(0.2, 1.0, size=10)
        out = bank.apply_weights(powers, weights)
        np.testing.assert_allclose(out, powers * weights, rtol=1e-9)

    def test_apply_weights_respects_extinction_floor(self):
        bank = MRBank(n_mrs=3)
        out = bank.apply_weights(np.ones(3), np.zeros(3))
        floor = bank.rings[0].min_transmission
        np.testing.assert_allclose(out, floor)

    def test_imprint_weights_returns_monotone_detunings(self):
        bank = MRBank(n_mrs=5)
        detunings = bank.imprint_weights(np.array([0.1, 0.3, 0.5, 0.7, 0.9]))
        assert np.all(np.diff(detunings) > 0)

    def test_imprint_rejects_too_many_weights(self):
        bank = MRBank(n_mrs=3)
        with pytest.raises(ValueError):
            bank.imprint_weights(np.ones(4))

    def test_imprint_rejects_out_of_range_weights(self):
        bank = MRBank(n_mrs=3)
        with pytest.raises(ValueError):
            bank.imprint_weights(np.array([0.5, 1.5, 0.2]))

    def test_weight_error_from_drift_increases_with_drift(self):
        bank = MRBank(n_mrs=4)
        weights = np.array([0.2, 0.4, 0.6, 0.8])
        small = bank.weight_error_from_drift(weights, 0.01)
        large = bank.weight_error_from_drift(weights, 0.2)
        assert np.all(large >= small)

    def test_bank_uses_requested_mr_template(self):
        bank = MRBank(n_mrs=3, mr_template=MicroringResonator.conventional())
        assert all(ring.design.name == "conventional" for ring in bank.rings)
