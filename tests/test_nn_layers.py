"""Unit tests for NN layers, including numerical gradient checks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    AvgPool2D,
    BatchNorm,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    MaxPool2D,
    ReLU,
    Sigmoid,
    Tanh,
)


class TestDense:
    def test_forward_matches_matmul(self, rng):
        layer = Dense(4, 3, rng=rng)
        x = rng.normal(size=(5, 4))
        np.testing.assert_allclose(layer.forward(x), x @ layer.weight + layer.bias)

    def test_input_gradient_check(self, rng):
        layer = Dense(4, 3, rng=rng)
        x = rng.normal(size=(2, 4))
        upstream = rng.normal(size=(2, 3))
        layer.forward(x)
        grad_input = layer.backward(upstream)

        expected = np.zeros_like(x)
        eps = 1e-6
        for idx in np.ndindex(x.shape):
            original = x[idx]
            x[idx] = original + eps
            plus = float(np.sum(layer.forward(x) * upstream))
            x[idx] = original - eps
            minus = float(np.sum(layer.forward(x) * upstream))
            x[idx] = original
            expected[idx] = (plus - minus) / (2 * eps)
        np.testing.assert_allclose(grad_input, expected, rtol=1e-4, atol=1e-6)

    def test_weight_gradient_check(self, rng):
        layer = Dense(3, 2, rng=rng)
        x = rng.normal(size=(4, 3))
        upstream = rng.normal(size=(4, 2))
        layer.forward(x)
        layer.backward(upstream)
        analytic = layer.gradients()["weight"]

        expected = np.zeros_like(layer.weight)
        eps = 1e-6
        for idx in np.ndindex(layer.weight.shape):
            original = layer.weight[idx]
            layer.weight[idx] = original + eps
            plus = float(np.sum(layer.forward(x) * upstream))
            layer.weight[idx] = original - eps
            minus = float(np.sum(layer.forward(x) * upstream))
            layer.weight[idx] = original
            expected[idx] = (plus - minus) / (2 * eps)
        np.testing.assert_allclose(analytic, expected, rtol=1e-4, atol=1e-6)

    def test_rejects_wrong_input_shape(self, rng):
        layer = Dense(4, 3)
        with pytest.raises(ValueError):
            layer.forward(rng.normal(size=(5, 7)))

    def test_workload_reports_fan_in_and_out(self):
        layer = Dense(256, 100)
        workload = layer.workload((256,))
        assert workload.kind == "fc"
        assert workload.dot_product_length == 256
        assert workload.n_dot_products == 100
        assert workload.macs == 25_600


class TestConv2D:
    def test_output_shape(self, rng):
        layer = Conv2D(3, 8, kernel_size=3, padding=1, rng=rng)
        x = rng.normal(size=(2, 3, 16, 16))
        assert layer.forward(x).shape == (2, 8, 16, 16)
        assert layer.output_shape((3, 16, 16)) == (8, 16, 16)

    def test_forward_matches_naive_convolution(self, rng):
        layer = Conv2D(2, 3, kernel_size=3, rng=rng)
        x = rng.normal(size=(1, 2, 5, 5))
        out = layer.forward(x)
        naive = np.zeros((1, 3, 3, 3))
        for f in range(3):
            for y in range(3):
                for xx in range(3):
                    patch = x[0, :, y : y + 3, xx : xx + 3]
                    naive[0, f, y, xx] = np.sum(patch * layer.weight[f]) + layer.bias[f]
        np.testing.assert_allclose(out, naive, rtol=1e-10)

    def test_input_gradient_check(self, rng):
        layer = Conv2D(1, 2, kernel_size=2, rng=rng)
        x = rng.normal(size=(1, 1, 4, 4))
        upstream = rng.normal(size=(1, 2, 3, 3))
        layer.forward(x)
        analytic = layer.backward(upstream)

        expected = np.zeros_like(x)
        eps = 1e-6
        for idx in np.ndindex(x.shape):
            original = x[idx]
            x[idx] = original + eps
            plus = float(np.sum(layer.forward(x) * upstream))
            x[idx] = original - eps
            minus = float(np.sum(layer.forward(x) * upstream))
            x[idx] = original
            expected[idx] = (plus - minus) / (2 * eps)
        np.testing.assert_allclose(analytic, expected, rtol=1e-4, atol=1e-6)

    def test_weight_gradient_check(self, rng):
        layer = Conv2D(1, 1, kernel_size=2, rng=rng)
        x = rng.normal(size=(2, 1, 3, 3))
        upstream = rng.normal(size=(2, 1, 2, 2))
        layer.forward(x)
        layer.backward(upstream)
        analytic = layer.gradients()["weight"]

        expected = np.zeros_like(layer.weight)
        eps = 1e-6
        for idx in np.ndindex(layer.weight.shape):
            original = layer.weight[idx]
            layer.weight[idx] = original + eps
            plus = float(np.sum(layer.forward(x) * upstream))
            layer.weight[idx] = original - eps
            minus = float(np.sum(layer.forward(x) * upstream))
            layer.weight[idx] = original
            expected[idx] = (plus - minus) / (2 * eps)
        np.testing.assert_allclose(analytic, expected, rtol=1e-4, atol=1e-6)

    def test_conv_workload_counts(self):
        layer = Conv2D(3, 16, kernel_size=3, padding=1)
        workload = layer.workload((3, 32, 32))
        assert workload.kind == "conv"
        assert workload.dot_product_length == 27
        assert workload.n_dot_products == 16 * 32 * 32


class TestPooling:
    def test_maxpool_selects_maximum(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = MaxPool2D(2).forward(x)
        np.testing.assert_allclose(out[0, 0], [[5, 7], [13, 15]])

    def test_avgpool_averages(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = AvgPool2D(2).forward(x)
        np.testing.assert_allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_maxpool_backward_routes_gradient_to_argmax(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        pool = MaxPool2D(2)
        pool.forward(x)
        grad = pool.backward(np.ones((1, 1, 2, 2)))
        assert grad.sum() == pytest.approx(4.0)
        assert grad[0, 0, 1, 1] == pytest.approx(1.0)  # position of 5
        assert grad[0, 0, 0, 0] == pytest.approx(0.0)

    def test_avgpool_backward_distributes_gradient(self):
        pool = AvgPool2D(2)
        x = np.ones((1, 1, 4, 4))
        pool.forward(x)
        grad = pool.backward(np.ones((1, 1, 2, 2)))
        np.testing.assert_allclose(grad, 0.25)


class TestActivationsAndRegularizers:
    @pytest.mark.parametrize("layer_cls", [ReLU, Sigmoid, Tanh])
    def test_activation_gradient_check(self, layer_cls, rng):
        layer = layer_cls()
        x = rng.normal(size=(3, 5))
        upstream = rng.normal(size=(3, 5))
        layer.forward(x)
        analytic = layer.backward(upstream)
        expected = np.zeros_like(x)
        eps = 1e-6
        for idx in np.ndindex(x.shape):
            original = x[idx]
            x[idx] = original + eps
            plus = float(np.sum(layer.forward(x) * upstream))
            x[idx] = original - eps
            minus = float(np.sum(layer.forward(x) * upstream))
            x[idx] = original
            expected[idx] = (plus - minus) / (2 * eps)
        np.testing.assert_allclose(analytic, expected, rtol=1e-4, atol=1e-5)

    def test_flatten_roundtrip(self, rng):
        layer = Flatten()
        x = rng.normal(size=(2, 3, 4, 4))
        out = layer.forward(x)
        assert out.shape == (2, 48)
        back = layer.backward(out)
        np.testing.assert_allclose(back, x)

    def test_dropout_inference_is_identity(self, rng):
        layer = Dropout(0.5)
        layer.eval()
        x = rng.normal(size=(4, 6))
        np.testing.assert_allclose(layer.forward(x), x)

    def test_dropout_training_preserves_expectation(self, rng):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        x = np.ones((200, 200))
        out = layer.forward(x)
        assert out.mean() == pytest.approx(1.0, abs=0.05)

    def test_dropout_rejects_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_batchnorm_normalizes_training_batch(self, rng):
        layer = BatchNorm(6)
        x = rng.normal(loc=3.0, scale=2.0, size=(64, 6))
        out = layer.forward(x)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-6)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_batchnorm_conv_layout(self, rng):
        layer = BatchNorm(3)
        x = rng.normal(size=(8, 3, 5, 5))
        out = layer.forward(x)
        assert out.shape == x.shape
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-6)

    def test_batchnorm_eval_uses_running_stats(self, rng):
        layer = BatchNorm(4, momentum=0.5)
        for _ in range(10):
            layer.forward(rng.normal(loc=1.0, size=(32, 4)))
        layer.eval()
        out = layer.forward(np.ones((2, 4)))
        assert np.all(np.isfinite(out))
