"""Shared fixtures for the CrossLight reproduction test suite.

Heavy objects (full-size zoo models, trained compact models, full accelerator
comparisons) are expensive to construct, so they are built once per session
and shared across test modules.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch import CrossLightAccelerator
from repro.nn import build_model, sign_mnist_synthetic
from repro.sim import compare_accelerators


@pytest.fixture(scope="session")
def full_models():
    """The four full-size Table-I models, keyed by model index."""
    return {index: build_model(index) for index in (1, 2, 3, 4)}


@pytest.fixture(scope="session")
def lenet_full(full_models):
    """Full-size LeNet-5 (model 1)."""
    return full_models[1]


@pytest.fixture(scope="session")
def best_accelerator():
    """The Cross_opt_TED accelerator (the paper's best variant)."""
    return CrossLightAccelerator.from_variant("cross_opt_ted")


@pytest.fixture(scope="session")
def all_variants():
    """All four CrossLight variants."""
    return CrossLightAccelerator.all_variants()


@pytest.fixture(scope="session")
def comparison(full_models):
    """Full accelerator comparison across the four Table-I models."""
    return compare_accelerators(models=full_models)


@pytest.fixture(scope="session")
def trained_compact_lenet():
    """A compact LeNet-5 trained briefly on the synthetic Sign-MNIST data.

    Returns ``(model, test_x, test_y)``; training is short but enough to be
    clearly better than chance, which is what the quantization tests need.
    """
    train_x, train_y, test_x, test_y = sign_mnist_synthetic(n_train=300, n_test=150)
    model = build_model(1, compact=True)
    model.fit(train_x, train_y, epochs=5, batch_size=32, seed=0)
    return model, test_x, test_y


@pytest.fixture()
def rng():
    """A deterministic NumPy random generator for per-test randomness."""
    return np.random.default_rng(1234)
