"""Tests for CONV/FC vector decomposition onto VDP operations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch import (
    DecompositionPlan,
    conv2d_reference,
    conv2d_via_vdp,
    decompose_vector,
    dot_product_partial_sums,
    matvec_via_vdp,
    plan_layer,
)


class TestVectorDecomposition:
    def test_chunks_reassemble_to_original(self, rng):
        vector = rng.normal(size=47)
        chunks = decompose_vector(vector, 15)
        np.testing.assert_allclose(np.concatenate(chunks), vector)
        assert [len(c) for c in chunks] == [15, 15, 15, 2]

    def test_exact_multiple_has_no_remainder_chunk(self, rng):
        chunks = decompose_vector(rng.normal(size=30), 15)
        assert [len(c) for c in chunks] == [15, 15]

    def test_partial_sums_equal_full_dot_product(self, rng):
        weights = rng.normal(size=100)
        activations = rng.normal(size=100)
        partial_sums, total = dot_product_partial_sums(weights, activations, 15)
        assert total == pytest.approx(float(weights @ activations), rel=1e-12)
        assert partial_sums.size == 7

    def test_paper_equation4_example(self):
        # [k1 k2 k3 k4] . [a1 a2 a3 a4] = SP1 + SP2 with chunk size 2 (Eq. 4).
        kernel = np.array([1.0, 2.0, 3.0, 4.0])
        activations = np.array([0.5, 0.25, 0.1, 0.2])
        partial_sums, total = dot_product_partial_sums(kernel, activations, 2)
        assert partial_sums[0] == pytest.approx(1 * 0.5 + 2 * 0.25)
        assert partial_sums[1] == pytest.approx(3 * 0.1 + 4 * 0.2)
        assert total == pytest.approx(float(kernel @ activations))

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            dot_product_partial_sums(np.ones(4), np.ones(5), 2)

    def test_invalid_chunk_size_rejected(self):
        with pytest.raises((TypeError, ValueError)):
            decompose_vector(np.ones(4), 0)


class TestConvMapping:
    def test_vdp_convolution_matches_reference(self, rng):
        images = rng.normal(size=(2, 3, 8, 8))
        kernels = rng.normal(size=(4, 3, 3, 3))
        reference = conv2d_reference(images, kernels)
        for chunk in (5, 15, 20, 27, 64):
            decomposed = conv2d_via_vdp(images, kernels, chunk_size=chunk)
            np.testing.assert_allclose(decomposed, reference, rtol=1e-10, atol=1e-12)

    def test_vdp_convolution_with_stride_and_padding(self, rng):
        images = rng.normal(size=(1, 2, 9, 9))
        kernels = rng.normal(size=(3, 2, 3, 3))
        reference = conv2d_reference(images, kernels, stride=2, padding=1)
        decomposed = conv2d_via_vdp(images, kernels, chunk_size=7, stride=2, padding=1)
        np.testing.assert_allclose(decomposed, reference, rtol=1e-10)

    def test_matvec_via_vdp_matches_numpy(self, rng):
        matrix = rng.normal(size=(20, 300))
        vector = rng.normal(size=300)
        for chunk in (15, 150, 256, 300):
            np.testing.assert_allclose(
                matvec_via_vdp(matrix, vector, chunk), matrix @ vector, rtol=1e-10
            )

    def test_channel_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            conv2d_via_vdp(rng.normal(size=(1, 2, 5, 5)), rng.normal(size=(1, 3, 3, 3)), 5)


class TestDecompositionPlan:
    def test_chunk_and_cycle_arithmetic(self):
        plan = plan_layer(dot_product_length=576, n_dot_products=1000, unit_vector_size=20)
        assert plan.chunks_per_dot_product == 29
        assert plan.total_unit_operations == 29_000
        assert plan.cycles_on_units(100) == 290

    def test_exact_fit_has_single_chunk(self):
        plan = plan_layer(150, 10, 150)
        assert plan.chunks_per_dot_product == 1
        assert plan.cycles_on_units(60) == 1

    def test_zero_workload(self):
        plan = plan_layer(0, 0, 20)
        assert plan.total_unit_operations == 0
        assert plan.cycles_on_units(10) == 0

    def test_cycles_round_up(self):
        plan = plan_layer(20, 101, 20)
        assert plan.cycles_on_units(100) == 2

    def test_negative_workload_rejected(self):
        with pytest.raises(ValueError):
            plan_layer(-1, 10, 20)

    def test_plan_is_frozen_dataclass(self):
        plan = plan_layer(10, 10, 20)
        assert isinstance(plan, DecompositionPlan)
        with pytest.raises(AttributeError):
            plan.n_dot_products = 5
