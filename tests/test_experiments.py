"""Tests for the per-figure/table experiment drivers.

Heavy experiments (Fig. 5 training sweep, full Fig. 6 sweep) are exercised at
reduced scale here; the benchmark harness runs them at full scale.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    device_dse,
    fig4_thermal,
    fig5_resolution_accuracy,
    fig6_design_space,
    fig7_power,
    fig8_epb,
    resolution_analysis,
    table1_models,
    table2_devices,
    table3_summary,
)


class TestTable1:
    def test_rows_match_paper_structure(self):
        rows = table1_models.run()
        assert [r.index for r in rows] == [1, 2, 3, 4]
        for row in rows:
            assert row.conv_layers == row.paper_conv_layers
            assert row.fc_layers == row.paper_fc_layers
            assert row.parameter_error_percent < 5.0

    def test_main_renders(self):
        text = table1_models.main()
        assert "Table I" in text and "lenet5" in text


class TestTable2:
    def test_device_values_match_paper(self):
        rows = table2_devices.run()
        by_name = {r.device: r for r in rows}
        assert by_name["EO Tuning"].latency == by_name["EO Tuning"].paper_latency
        assert by_name["TO Tuning"].power == by_name["TO Tuning"].paper_power
        assert by_name["Photodetector"].latency == "5.8 ps"

    def test_main_renders(self):
        assert "Table II" in table2_devices.main()


class TestFig4:
    def test_crosstalk_decays_and_power_minimum_at_5um(self):
        result = fig4_thermal.run()
        assert np.all(np.diff(result.crosstalk_ratio) < 0)
        assert result.optimal_pitch_um == pytest.approx(5.0)

    def test_ted_saves_power_at_5um(self):
        result = fig4_thermal.run()
        index = list(result.pitch_um).index(5.0)
        assert result.naive_power_per_mr_mw[index] > 3 * result.ted_power_per_mr_mw[index]

    def test_heat_solver_calibration_close_to_default(self):
        calibrated = fig4_thermal.run(use_heat_solver_calibration=True)
        assert 3.0 <= calibrated.optimal_pitch_um <= 8.0

    def test_main_renders(self):
        assert "Fig. 4" in fig4_thermal.main()


class TestFig5:
    @pytest.fixture(scope="class")
    def small_curves(self):
        # Reduced scale: classification models only, short training, coarse sweep.
        return fig5_resolution_accuracy.run(
            model_indices=(1, 3),
            bits_sweep=(1, 4, 16),
            epochs=6,
            n_train=300,
            n_test=100,
        )

    def test_accuracy_degrades_at_one_bit(self, small_curves):
        for curve in small_curves:
            assert curve.accuracy[-1] > curve.accuracy[0]

    def test_high_resolution_accuracy_above_chance(self, small_curves):
        # Chance level is 0.1 (10 classes); the easy Sign-MNIST stand-in
        # should be clearly learnable even at this reduced training scale,
        # the harder STL-10 stand-in at least above chance.
        by_index = {curve.model_index: curve for curve in small_curves}
        assert by_index[1].full_precision_accuracy > 0.3
        assert by_index[3].full_precision_accuracy > 0.15

    def test_curve_metadata(self, small_curves):
        assert [c.model_index for c in small_curves] == [1, 3]
        assert all(c.bits == (1, 4, 16) for c in small_curves)

    def test_siamese_path_runs(self):
        curve = fig5_resolution_accuracy.run_for_model(
            4, bits_sweep=(2, 16), n_train=40, n_test=40
        )
        assert len(curve.accuracy) == 2
        assert all(0.0 <= a <= 1.0 for a in curve.accuracy)


class TestFig6:
    @pytest.fixture(scope="class")
    def small_sweep(self, ):
        geometries = [
            (10, 100, 50, 30),
            (20, 150, 100, 60),
            (20, 100, 50, 30),
            (5, 50, 25, 30),
        ]
        return fig6_design_space.run(geometries=geometries)

    def test_paper_geometry_has_highest_fps(self, small_sweep):
        paper = small_sweep.point_for((20, 150, 100, 60))
        assert paper.avg_fps == max(p.avg_fps for p in small_sweep.points)

    def test_all_points_within_area_budget_flagged(self, small_sweep):
        assert set(small_sweep.feasible_points).issubset(set(small_sweep.points))
        assert all(p.area_mm2 <= small_sweep.area_budget_mm2 for p in small_sweep.feasible_points)

    def test_best_point_is_feasible(self, small_sweep):
        assert small_sweep.best in small_sweep.feasible_points

    def test_paper_geometry_near_best_fps_per_epb(self, small_sweep):
        paper = small_sweep.point_for((20, 150, 100, 60))
        assert paper.fps_per_epb >= 0.5 * small_sweep.best.fps_per_epb

    def test_unknown_geometry_lookup_raises(self, small_sweep):
        with pytest.raises(KeyError):
            small_sweep.point_for((1, 2, 3, 4))


class TestFig7:
    def test_all_platforms_present(self):
        rows = fig7_power.run()
        names = {r.name for r in rows}
        assert {"DEAP_CNN", "Holylight", "Cross_base", "Cross_opt_TED", "P100", "Edge TPU"} <= names

    def test_crosslight_variant_power_monotone(self):
        powers = fig7_power.crosslight_variant_powers()
        assert (
            powers["Cross_base"]
            > powers["Cross_base_TED"]
            > powers["Cross_opt"]
            > powers["Cross_opt_TED"]
        )

    def test_best_variant_cheaper_than_photonic_baselines_and_cpu_gpu(self):
        rows = {r.name: r.power_w for r in fig7_power.run()}
        assert rows["Cross_opt_TED"] < rows["DEAP_CNN"]
        assert rows["Cross_opt_TED"] < rows["Holylight"]
        assert rows["Cross_opt_TED"] < rows["P100"]
        assert rows["Cross_opt_TED"] > rows["Edge TPU"]

    def test_main_renders(self):
        assert "Fig. 7" in fig7_power.main()


class TestFig8AndTable3:
    @pytest.fixture(scope="class")
    def fig8(self, ):
        return fig8_epb.run()

    def test_fig8_covers_all_accelerators_and_models(self, fig8):
        assert len(fig8.accelerators) == 6
        assert len(fig8.models) == 4
        assert len(fig8.reports) == 24

    def test_fig8_ordering_per_model(self, fig8):
        for model in fig8.models:
            assert fig8.epb("Cross_opt_TED", model) < fig8.epb("Holylight", model)
            assert fig8.epb("Holylight", model) < fig8.epb("DEAP_CNN", model)

    def test_fig8_average_consistency(self, fig8):
        manual = np.mean([fig8.epb("Cross_opt_TED", m) for m in fig8.models])
        assert fig8.average_epb("Cross_opt_TED") == pytest.approx(manual)

    def test_table3_improvement_factors(self):
        result = table3_summary.run()
        assert 4.0 < result.epb_improvement_over_holylight() < 30.0
        assert 8.0 < result.perf_per_watt_improvement_over_holylight() < 35.0
        assert result.epb_improvement_over_deap() > 100.0

    def test_table3_includes_electronic_reference_rows(self):
        result = table3_summary.run()
        assert result.row_for("P100").source == "published reference"
        assert result.row_for("Cross_opt_TED").source == "simulated"

    def test_table3_main_renders(self):
        text = table3_summary.main()
        assert "Table III" in text and "Cross_opt_TED" in text


class TestDeviceDSEAndResolution:
    def test_device_dse_selects_paper_design(self):
        result = device_dse.run()
        assert result.best.input_waveguide_width_nm == pytest.approx(400.0)
        assert result.best.ring_waveguide_width_nm == pytest.approx(800.0)
        assert result.drift_reduction_percent == pytest.approx(70.0, abs=4.0)

    def test_resolution_analysis_matches_paper(self):
        result = resolution_analysis.run()
        assert result.crosslight.resolution_bits >= 16
        assert result.deap_cnn.resolution_bits == 4
        assert result.holylight.resolution_bits == 2
        assert result.max_bank_size_for_16_bits >= 15

    def test_mains_render(self):
        assert "IV.A" in device_dse.main()
        assert "V.B" in resolution_analysis.main()
