"""Tests for accelerator configurations, power/metrics, and CrossLight itself."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch import (
    BEST_K,
    BEST_M_FC_UNITS,
    BEST_N,
    BEST_N_CONV_UNITS,
    CrossLightAccelerator,
    CrossLightConfig,
    InferenceReport,
    PowerBreakdown,
    aggregate,
    design_space_geometries,
)
from repro.nn.layers import LayerWorkload


class TestConfig:
    def test_paper_selected_geometry(self):
        assert (BEST_N, BEST_K, BEST_N_CONV_UNITS, BEST_M_FC_UNITS) == (20, 150, 100, 60)

    def test_variant_constructors(self):
        variants = CrossLightConfig.all_variants()
        names = [v.name for v in variants]
        assert names == ["Cross_base", "Cross_base_TED", "Cross_opt", "Cross_opt_TED"]
        assert variants[0].mr_design.name == "conventional"
        assert variants[-1].mr_design.name == "optimized"
        assert variants[-1].use_ted and not variants[0].use_ted

    def test_ted_variants_use_5um_pitch(self):
        assert CrossLightConfig.cross_opt_ted().mr_pitch_um == pytest.approx(5.0)
        assert CrossLightConfig.cross_opt().mr_pitch_um == pytest.approx(120.0)

    def test_mrs_per_bank_capped_at_15(self):
        with pytest.raises(ValueError):
            CrossLightConfig(name="bad", mrs_per_bank=20)

    def test_with_geometry_copy(self):
        config = CrossLightConfig.cross_opt_ted().with_geometry(10, 100, 50, 30)
        assert config.conv_vector_size == 10
        assert config.n_fc_units == 30
        assert config.name == "Cross_opt_TED"

    def test_macs_per_cycle(self):
        config = CrossLightConfig.cross_opt_ted()
        assert config.macs_per_cycle == 20 * 100 + 150 * 60

    def test_design_space_contains_paper_point(self):
        geometries = list(design_space_geometries())
        assert (20, 150, 100, 60) in geometries
        assert len(geometries) == len(set(geometries))


class TestPowerBreakdown:
    def test_total_is_sum_of_components(self):
        breakdown = PowerBreakdown(1.0, 2.0, 3.0, 4.0, 5.0, 6.0)
        assert breakdown.total_w == pytest.approx(21.0)
        assert breakdown.tuning_w == pytest.approx(5.0)

    def test_negative_component_rejected(self):
        with pytest.raises(ValueError):
            PowerBreakdown(-1.0, 0, 0, 0, 0, 0)

    def test_addition_and_scaling(self):
        a = PowerBreakdown(1, 1, 1, 1, 1, 1)
        b = a + a
        assert b.total_w == pytest.approx(12.0)
        assert a.scaled(0.5).total_w == pytest.approx(3.0)

    def test_as_dict_keys(self):
        keys = set(PowerBreakdown(0, 0, 0, 0, 0, 0).as_dict())
        assert keys == {
            "laser_w",
            "tuning_static_w",
            "tuning_dynamic_w",
            "receivers_w",
            "converters_w",
            "control_w",
        }


class TestInferenceReport:
    def _report(self, latency=1e-3, power=10.0, macs=1_000_000, bits=16):
        breakdown = PowerBreakdown(power, 0, 0, 0, 0, 0)
        return InferenceReport(
            accelerator="test", model="m", latency_s=latency, power=breakdown,
            macs=macs, resolution_bits=bits,
        )

    def test_derived_metrics(self):
        report = self._report()
        assert report.fps == pytest.approx(1000.0)
        assert report.energy_j == pytest.approx(0.01)
        assert report.bits_processed == 16_000_000
        assert report.epb_pj_per_bit == pytest.approx(0.01 / 16e6 * 1e12)
        assert report.kfps_per_watt == pytest.approx(0.1)

    def test_invalid_report_rejected(self):
        with pytest.raises(ValueError):
            self._report(latency=0.0)
        with pytest.raises(ValueError):
            self._report(macs=0)

    def test_aggregate_averages(self):
        reports = [self._report(latency=1e-3), self._report(latency=2e-3)]
        agg = aggregate(reports)
        assert agg.avg_fps == pytest.approx((1000 + 500) / 2)
        assert agg.accelerator == "test"

    def test_aggregate_rejects_mixed_accelerators(self):
        breakdown = PowerBreakdown(1, 0, 0, 0, 0, 0)
        a = InferenceReport("a", "m", 1e-3, breakdown, 100, 16)
        b = InferenceReport("b", "m", 1e-3, breakdown, 100, 16)
        with pytest.raises(ValueError):
            aggregate([a, b])


class TestCrossLightAccelerator:
    def test_variant_factory_and_names(self, all_variants):
        names = [a.name for a in all_variants]
        assert names == ["Cross_base", "Cross_base_TED", "Cross_opt", "Cross_opt_TED"]
        with pytest.raises(ValueError):
            CrossLightAccelerator.from_variant("not_a_variant")

    def test_total_mr_count_for_paper_geometry(self, best_accelerator):
        # 100 conv units x 2 arms x 30 MRs + 60 fc units x 10 arms x 30 MRs.
        assert best_accelerator.total_mrs == 100 * 60 + 60 * 300

    def test_power_breakdown_components_positive(self, best_accelerator):
        breakdown = best_accelerator.power_breakdown()
        for value in breakdown.as_dict().values():
            assert value >= 0
        assert breakdown.total_w > 0

    def test_variant_power_ordering_matches_paper(self, all_variants):
        powers = {a.name: a.total_power_w for a in all_variants}
        assert (
            powers["Cross_base"]
            > powers["Cross_base_TED"]
            > powers["Cross_opt"]
            > powers["Cross_opt_TED"]
        )

    def test_optimized_design_reduces_static_tuning_power(self):
        base = CrossLightAccelerator.from_variant("cross_base")
        opt = CrossLightAccelerator.from_variant("cross_opt")
        assert opt.power_breakdown().tuning_static_w < base.power_breakdown().tuning_static_w

    def test_ted_reduces_static_tuning_power(self):
        base = CrossLightAccelerator.from_variant("cross_base")
        ted = CrossLightAccelerator.from_variant("cross_base_ted")
        assert ted.power_breakdown().tuning_static_w < base.power_breakdown().tuning_static_w

    def test_area_within_paper_constraint(self, best_accelerator):
        assert 10.0 <= best_accelerator.area_mm2() <= 25.0

    def test_cycle_time_close_to_eo_latency(self, best_accelerator):
        cycle = best_accelerator.cycle_time_s()
        assert 20e-9 < cycle < 60e-9

    def test_all_variants_share_cycle_time(self, all_variants):
        times = {a.cycle_time_s() for a in all_variants}
        assert len(times) == 1

    def test_cycles_for_workloads(self, best_accelerator):
        workloads = [
            LayerWorkload(kind="conv", dot_product_length=27, n_dot_products=1000),
            LayerWorkload(kind="fc", dot_product_length=300, n_dot_products=60),
            LayerWorkload(kind="other", dot_product_length=0, n_dot_products=0),
        ]
        conv_cycles = -(-1000 * 2 // 100)  # ceil(27/20)=2 chunks, 100 units
        fc_cycles = -(-60 * 2 // 60)  # ceil(300/150)=2 chunks, 60 units
        assert best_accelerator.cycles_for_workloads(workloads) == conv_cycles + fc_cycles

    def test_latency_requires_accelerated_layers(self, best_accelerator):
        with pytest.raises(ValueError):
            best_accelerator.latency_for_workloads(
                [LayerWorkload(kind="other", dot_product_length=0, n_dot_products=0)]
            )

    def test_simulate_workloads_report(self, best_accelerator, lenet_full):
        report = best_accelerator.simulate_workloads(lenet_full.workloads(), lenet_full.name)
        assert report.accelerator == "Cross_opt_TED"
        assert report.model == "lenet5"
        assert report.macs > 100_000
        assert report.fps > 0
        assert np.isfinite(report.epb_pj_per_bit)

    def test_more_conv_units_reduce_latency(self, lenet_full):
        small = CrossLightAccelerator(config=CrossLightConfig.cross_opt_ted().with_geometry(20, 150, 25, 60))
        large = CrossLightAccelerator(config=CrossLightConfig.cross_opt_ted().with_geometry(20, 150, 100, 60))
        workloads = lenet_full.workloads()
        assert large.latency_for_workloads(workloads) < small.latency_for_workloads(workloads)
