"""Tests for the quantization machinery (the QKeras substitute)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    QuantizedModelWrapper,
    UniformQuantizer,
    build_model,
    capture_parameters,
    evaluate_quantized_accuracy,
    quantization_aware_finetune,
    quantize_array,
    restore_parameters,
    sign_mnist_synthetic,
    swapped_parameters,
)


class TestParameterSwapping:
    def test_swapped_parameters_applies_and_restores(self):
        model = build_model(1, compact=True)
        original = [p.copy() for layer in model.layers for p in layer.parameters().values()]
        with swapped_parameters(model, lambda p: p * 0.0, param_names=("weight",)):
            for layer in model.layers:
                weight = layer.parameters().get("weight")
                if weight is not None:
                    np.testing.assert_allclose(weight, 0.0)
        restored = [p for layer in model.layers for p in layer.parameters().values()]
        for before, after in zip(original, restored):
            np.testing.assert_allclose(before, after)

    def test_swapped_parameters_restores_on_exception(self):
        model = build_model(1, compact=True)
        original = [p.copy() for layer in model.layers for p in layer.parameters().values()]
        with pytest.raises(RuntimeError):
            with swapped_parameters(model, lambda p: p + 1.0):
                raise RuntimeError("forward pass blew up")
        restored = [p for layer in model.layers for p in layer.parameters().values()]
        for before, after in zip(original, restored):
            np.testing.assert_allclose(before, after)

    def test_capture_restores_only_selected_names(self):
        model = build_model(1, compact=True)
        saved = capture_parameters(model, param_names=("weight",))
        assert saved, "expected at least one Conv2D/Dense layer"
        assert all(set(stored) == {"weight"} for stored in saved.values())
        first = next(iter(saved))
        model.layers[first].parameters()["weight"][...] = 123.0
        restore_parameters(model, saved)
        assert not np.any(model.layers[first].parameters()["weight"] == 123.0)


class TestUniformQuantizer:
    def test_level_count(self):
        assert UniformQuantizer(bits=1).n_levels == 2
        assert UniformQuantizer(bits=8).n_levels == 256

    def test_idempotence(self, rng):
        quantizer = UniformQuantizer(bits=6)
        values = rng.uniform(-1, 1, size=100)
        once = quantizer.quantize(values)
        twice = quantizer.quantize(once)
        np.testing.assert_allclose(once, twice)

    def test_values_on_grid(self, rng):
        quantizer = UniformQuantizer(bits=4)
        values = quantizer.quantize(rng.uniform(-1, 1, size=50))
        # Grid levels are -max_abs + k * step for integer k in [0, 2**bits).
        level_indices = (values + quantizer.max_abs) / quantizer.step
        np.testing.assert_allclose(level_indices, np.round(level_indices), atol=1e-9)
        assert np.all(level_indices > -0.5)
        assert np.all(level_indices < quantizer.n_levels - 0.5)

    def test_error_bounded_by_half_step(self, rng):
        quantizer = UniformQuantizer(bits=5)
        values = rng.uniform(-1, 1, size=200)
        error = np.abs(quantizer.quantize(values) - values)
        assert np.all(error <= quantizer.step / 2 + 1e-12)

    def test_error_decreases_with_bits(self, rng):
        values = rng.uniform(-1, 1, size=500)
        errors = [UniformQuantizer(bits=b).quantize(values) - values for b in (2, 4, 8, 12)]
        rms = [float(np.sqrt(np.mean(e**2))) for e in errors]
        assert all(b < a for a, b in zip(rms, rms[1:]))

    def test_binarization_at_1_bit(self):
        quantizer = UniformQuantizer(bits=1, max_abs=1.0)
        np.testing.assert_allclose(
            quantizer.quantize(np.array([-0.3, 0.4, 0.0])), [-1.0, 1.0, 1.0]
        )

    def test_clipping_beyond_range(self):
        quantizer = UniformQuantizer(bits=8, max_abs=1.0)
        assert quantizer.quantize(np.array([5.0]))[0] == pytest.approx(1.0)
        assert quantizer.quantize(np.array([-5.0]))[0] == pytest.approx(-1.0)

    def test_invalid_parameters(self):
        with pytest.raises((TypeError, ValueError)):
            UniformQuantizer(bits=0)
        with pytest.raises(ValueError):
            UniformQuantizer(bits=4, max_abs=0.0)


class TestQuantizeArray:
    def test_range_fit_to_data(self):
        values = np.array([-4.0, 2.0, 3.9])
        quantized = quantize_array(values, bits=8)
        assert np.max(np.abs(quantized)) <= 4.0 + 1e-9
        assert np.abs(quantized - values).max() < 4.0 / 100

    def test_all_zero_array_unchanged(self):
        values = np.zeros(10)
        np.testing.assert_allclose(quantize_array(values, 4), values)

    def test_high_bits_close_to_identity(self, rng):
        values = rng.normal(size=100)
        np.testing.assert_allclose(quantize_array(values, 16), values, atol=1e-3)


class TestQuantizedModelWrapper:
    def test_context_manager_restores_weights(self):
        model = build_model(1, compact=True)
        original = [p.copy() for layer in model.layers for p in layer.parameters().values()]
        with QuantizedModelWrapper(model, weight_bits=2):
            pass
        restored = [p for layer in model.layers for p in layer.parameters().values()]
        for before, after in zip(original, restored):
            np.testing.assert_allclose(before, after)

    def test_weights_actually_quantized_inside_context(self):
        model = build_model(1, compact=True)
        wrapper = QuantizedModelWrapper(model, weight_bits=2)
        with wrapper:
            weights = model.layers[0].parameters()["weight"]
            assert len(np.unique(np.round(weights, 9))) <= 4

    def test_accuracy_degrades_at_low_bits(self, trained_compact_lenet):
        model, test_x, test_y = trained_compact_lenet
        high = evaluate_quantized_accuracy(model, test_x, test_y, 16)
        low = evaluate_quantized_accuracy(model, test_x, test_y, 1)
        full = model.evaluate(test_x, test_y)
        assert high == pytest.approx(full, abs=0.05)
        assert low < high

    def test_16bit_quantization_nearly_lossless(self, trained_compact_lenet):
        model, test_x, test_y = trained_compact_lenet
        assert evaluate_quantized_accuracy(model, test_x, test_y, 16) == pytest.approx(
            model.evaluate(test_x, test_y), abs=0.03
        )

    def test_invalid_bits_rejected(self):
        model = build_model(1, compact=True)
        with pytest.raises((TypeError, ValueError)):
            QuantizedModelWrapper(model, weight_bits=0)


class TestQuantizationAwareFinetune:
    def test_qat_does_not_break_model_and_keeps_float_weights_finite(self):
        train_x, train_y, test_x, test_y = sign_mnist_synthetic(n_train=120, n_test=60)
        model = build_model(1, compact=True)
        model.fit(train_x, train_y, epochs=2, batch_size=32, seed=0)
        before = evaluate_quantized_accuracy(model, test_x, test_y, 4)
        quantization_aware_finetune(model, train_x, train_y, bits=4, epochs=1)
        after = evaluate_quantized_accuracy(model, test_x, test_y, 4)
        for layer in model.layers:
            for param in layer.parameters().values():
                assert np.all(np.isfinite(param))
        # QAT should not catastrophically hurt the quantized accuracy.
        assert after >= before - 0.15
